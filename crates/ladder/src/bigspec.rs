//! Problem specifications beyond the DP table's reach.
//!
//! `blitz-core`'s [`JoinSpec`] is deliberately capped at [`MAX_RELS`]
//! relations because its relation sets are `u32` bit-vectors feeding a
//! `2^n`-row DP table. The ladder serves queries up to `n = 100`, so it
//! needs a representation with no table behind it: [`BigSpec`] stores the
//! same cardinalities-plus-selectivity-matrix data with `u128` relation
//! sets and **no** exhaustive optimizer — only plan re-costing, greedy
//! construction, and extraction of table-sized [`JoinSpec`] sub-problems
//! for the ladder's rung-2 block DP.
//!
//! [`Plan`] trees are index-agnostic (a leaf is just a `usize`), so the
//! core plan type and the stochastic move set work unchanged on big
//! problems; the one rule is that `Plan::rel_set`/`Plan::cost` — which go
//! through `RelSet` — must never be called on a plan whose leaves exceed
//! [`MAX_RELS`]. All costing of big plans goes through
//! [`BigSpec::plan_cost`] instead, which mirrors the `Plan::cost`
//! recursion exactly (same operation order, bit-identical results for
//! problems both types can represent).

use blitz_core::{CostModel, JoinSpec, Plan, SpecError, MAX_RELS};

/// Hard cap on [`BigSpec`] relations: one bit per relation in a `u128`.
pub const MAX_BIG_RELS: usize = 128;

/// A join-ordering problem of up to [`MAX_BIG_RELS`] relations: base
/// cardinalities plus a symmetric selectivity matrix (entry 1.0 ⇔ no
/// predicate), exactly as in [`JoinSpec`] but without the table-size cap.
#[derive(Clone, Debug, PartialEq)]
pub struct BigSpec {
    cards: Vec<f64>,
    /// Row-major `n × n` symmetric matrix; diagonal unused (1.0).
    sel: Vec<f64>,
}

impl BigSpec {
    /// Build a specification from cardinalities and a predicate list
    /// `(i, j, selectivity)`; multiple predicates between a pair multiply.
    ///
    /// Validation mirrors [`JoinSpec::new`] with the relation cap raised
    /// to [`MAX_BIG_RELS`].
    pub fn new(cards: &[f64], predicates: &[(usize, usize, f64)]) -> Result<BigSpec, SpecError> {
        let n = cards.len();
        if n == 0 {
            return Err(SpecError::Empty);
        }
        if n > MAX_BIG_RELS {
            return Err(SpecError::TooManyRels(n));
        }
        for (rel, &card) in cards.iter().enumerate() {
            if !(card.is_finite() && card > 0.0) {
                return Err(SpecError::BadCardinality { rel, card });
            }
        }
        let mut sel = vec![1.0f64; n * n];
        for &(i, j, s) in predicates {
            if i >= n || j >= n || i == j || !(s.is_finite() && s > 0.0) {
                return Err(SpecError::BadPredicate { lhs: i, rhs: j, selectivity: s });
            }
            sel[i * n + j] *= s;
            sel[j * n + i] *= s;
        }
        Ok(BigSpec { cards: cards.to_vec(), sel })
    }

    /// Lift a table-sized [`JoinSpec`] into a [`BigSpec`] (lossless: the
    /// cardinalities and selectivity matrix are copied verbatim).
    pub fn from_spec(spec: &JoinSpec) -> BigSpec {
        let n = spec.n();
        let mut sel = vec![1.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sel[i * n + j] = spec.selectivity(i, j);
                }
            }
        }
        BigSpec { cards: spec.cards().to_vec(), sel }
    }

    /// Number of base relations `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.cards.len()
    }

    /// Cardinality of base relation `rel`.
    #[inline]
    pub fn card(&self, rel: usize) -> f64 {
        self.cards[rel]
    }

    /// All base cardinalities.
    #[inline]
    pub fn cards(&self) -> &[f64] {
        &self.cards
    }

    /// Effective selectivity between relations `i` and `j` (1.0 ⇔ no
    /// predicate).
    #[inline]
    pub fn selectivity(&self, i: usize, j: usize) -> f64 {
        self.sel[i * self.n() + j]
    }

    /// `true` iff a (non-trivial) predicate connects `i` and `j`.
    #[inline]
    pub fn has_predicate(&self, i: usize, j: usize) -> bool {
        self.selectivity(i, j) != 1.0
    }

    /// The join-graph edges `(i, j, σ)` with `i < j` and `σ ≠ 1`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let n = self.n();
        let mut out = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let s = self.selectivity(i, j);
                if s != 1.0 {
                    out.push((i, j, s));
                }
            }
        }
        out
    }

    /// Number of join-graph edges.
    pub fn edge_count(&self) -> usize {
        self.edges().len()
    }

    /// `true` iff the whole join graph is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        let mut reached = vec![false; n];
        let mut stack = vec![0usize];
        reached[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, r) in reached.iter_mut().enumerate() {
                if !*r && self.has_predicate(u, v) {
                    *r = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// `true` iff the join graph contains no cycle (union-find over the
    /// edges; parallel predicates were already folded by construction).
    pub fn is_acyclic(&self) -> bool {
        let mut parent: Vec<usize> = (0..self.n()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, j, _) in self.edges() {
            let a = find(&mut parent, i);
            let b = find(&mut parent, j);
            if a == b {
                return false;
            }
            parent[a] = b;
        }
        true
    }

    /// Lower to a [`JoinSpec`] when the problem fits the core types
    /// (`n ≤ MAX_RELS`); `None` otherwise.
    pub fn to_join_spec(&self) -> Option<JoinSpec> {
        if self.n() > MAX_RELS {
            return None;
        }
        JoinSpec::new(&self.cards, &self.edges()).ok()
    }

    /// Extract the table-sized sub-problem induced by `rels` (order
    /// defines the new indices) — the rung-2 block-DP input. The mapping
    /// back is `rels[new_index] = original_index`.
    ///
    /// # Panics
    /// Panics if `rels` is empty, exceeds [`MAX_RELS`], or repeats a
    /// relation.
    pub fn subspec(&self, rels: &[usize]) -> JoinSpec {
        assert!(
            !rels.is_empty() && rels.len() <= MAX_RELS,
            "sub-problem of {} relations does not fit a JoinSpec",
            rels.len()
        );
        let cards: Vec<f64> = rels.iter().map(|&r| self.cards[r]).collect();
        let mut preds = Vec::new();
        for (i, &a) in rels.iter().enumerate() {
            for (j, &b) in rels.iter().enumerate().skip(i + 1) {
                assert!(a != b, "relation R{a} appears twice in the sub-problem");
                let s = self.selectivity(a, b);
                if s != 1.0 {
                    preds.push((i, j, s));
                }
            }
        }
        // Documented `# Panics` contract above; keep the panic but name
        // the rejected input instead of an anonymous expect.
        JoinSpec::new(&cards, &preds)
            .unwrap_or_else(|e| panic!("sub-problem of a valid BigSpec rejected: {e:?}"))
    }

    /// `Π_span(U, V)`: the selectivity product over predicates spanning
    /// the two (disjoint) `u128` relation sets. Members are visited in
    /// ascending index order on both sides, matching
    /// [`JoinSpec::pi_span`]'s iteration exactly so costs agree bitwise.
    pub fn pi_span_bits(&self, u: u128, v: u128) -> f64 {
        debug_assert_eq!(u & v, 0, "Π_span operands must be disjoint");
        let mut p = 1.0;
        let mut ub = u;
        while ub != 0 {
            let i = ub.trailing_zeros() as usize;
            ub &= ub - 1;
            let mut vb = v;
            while vb != 0 {
                let j = vb.trailing_zeros() as usize;
                vb &= vb - 1;
                p *= self.selectivity(i, j);
            }
        }
        p
    }

    /// Recompute a plan's `(result cardinality, total cost)` bottom-up —
    /// the [`Plan::cost`] recursion re-stated over `u128` relation sets so
    /// it works for leaves `≥ MAX_RELS`. Identical operation order means
    /// identical floating-point results where both apply.
    pub fn plan_cost<M: CostModel>(&self, plan: &Plan, model: &M) -> (f64, f32) {
        let (_, card, cost) = self.cost_rec(plan, model);
        (card, cost)
    }

    fn cost_rec<M: CostModel>(&self, plan: &Plan, model: &M) -> (u128, f64, f32) {
        match plan {
            Plan::Scan { rel } => {
                debug_assert!(*rel < self.n(), "leaf R{rel} outside the spec");
                (1u128 << rel, self.cards[*rel], 0.0)
            }
            Plan::Join { left, right } => {
                let (ls, lc, lcost) = self.cost_rec(left, model);
                let (rs, rc, rcost) = self.cost_rec(right, model);
                let out = lc * rc * self.pi_span_bits(ls, rs);
                let cost = lcost + rcost + model.kappa(out, lc, rc);
                (ls | rs, out, cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blitz_core::Kappa0;

    fn fig3_spec() -> JoinSpec {
        JoinSpec::new(
            &[10.0, 20.0, 30.0, 40.0],
            &[(0, 1, 0.1), (0, 2, 0.2), (1, 2, 0.3), (0, 3, 0.4)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_through_join_spec_is_lossless() {
        let spec = fig3_spec();
        let big = BigSpec::from_spec(&spec);
        assert_eq!(big.n(), 4);
        assert_eq!(big.selectivity(0, 2), 0.2);
        assert_eq!(big.selectivity(1, 3), 1.0);
        let back = big.to_join_spec().unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn plan_cost_matches_core_recursion_bitwise() {
        let spec = fig3_spec();
        let big = BigSpec::from_spec(&spec);
        let plans = [
            Plan::join(
                Plan::join(Plan::scan(0), Plan::scan(3)),
                Plan::join(Plan::scan(1), Plan::scan(2)),
            ),
            Plan::join(
                Plan::join(Plan::join(Plan::scan(2), Plan::scan(1)), Plan::scan(0)),
                Plan::scan(3),
            ),
        ];
        for plan in &plans {
            let (card, cost) = plan.cost(&spec, &Kappa0);
            let (bcard, bcost) = big.plan_cost(plan, &Kappa0);
            assert_eq!(card.to_bits(), bcard.to_bits(), "cards must agree bitwise");
            assert_eq!(cost.to_bits(), bcost.to_bits(), "costs must agree bitwise");
        }
    }

    #[test]
    fn accepts_more_relations_than_join_spec() {
        let cards = vec![100.0; 100];
        let preds: Vec<(usize, usize, f64)> = (0..99).map(|i| (i, i + 1, 0.01)).collect();
        let big = BigSpec::new(&cards, &preds).unwrap();
        assert_eq!(big.n(), 100);
        assert!(big.is_connected());
        assert!(big.is_acyclic());
        assert!(big.to_join_spec().is_none());
        assert!(JoinSpec::new(&cards, &preds).is_err());
        // Costing a plan with leaves far above MAX_RELS works.
        let plan = (1..100).fold(Plan::scan(0), |acc, r| Plan::join(acc, Plan::scan(r)));
        let (card, cost) = big.plan_cost(&plan, &Kappa0);
        assert!(card.is_finite() && card > 0.0);
        assert!(cost.is_finite());
    }

    #[test]
    fn validation_mirrors_join_spec() {
        assert_eq!(BigSpec::new(&[], &[]).unwrap_err(), SpecError::Empty);
        assert!(matches!(
            BigSpec::new(&[1.0, -1.0], &[]).unwrap_err(),
            SpecError::BadCardinality { rel: 1, .. }
        ));
        assert!(matches!(
            BigSpec::new(&[1.0, 2.0], &[(0, 0, 0.5)]).unwrap_err(),
            SpecError::BadPredicate { .. }
        ));
        let too_many = vec![1.0; MAX_BIG_RELS + 1];
        assert!(matches!(
            BigSpec::new(&too_many, &[]).unwrap_err(),
            SpecError::TooManyRels(_)
        ));
    }

    #[test]
    fn subspec_extracts_induced_subproblem() {
        let spec = fig3_spec();
        let big = BigSpec::from_spec(&spec);
        let sub = big.subspec(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.card(0), 20.0);
        assert_eq!(sub.selectivity(0, 1), 0.3); // R1~R2
        assert_eq!(sub.selectivity(0, 2), 1.0); // R1~R3: none
    }

    #[test]
    fn connectivity_and_cycles() {
        let chain = BigSpec::new(&[1.0, 2.0, 3.0], &[(0, 1, 0.5), (1, 2, 0.5)]).unwrap();
        assert!(chain.is_connected());
        assert!(chain.is_acyclic());
        let cyc = BigSpec::new(&[1.0, 2.0, 3.0], &[(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)])
            .unwrap();
        assert!(!cyc.is_acyclic());
        let disc = BigSpec::new(&[1.0, 2.0, 3.0], &[(0, 1, 0.5)]).unwrap();
        assert!(!disc.is_connected());
    }
}
