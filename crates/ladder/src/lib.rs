//! # blitz-ladder — the anytime optimality ladder
//!
//! The paper's `O(3^n)` exact search "is the method of choice for `n`
//! into the mid-teens"; past that, a serving system has to degrade. This
//! crate replaces the cliff from exact DP straight to an unflagged
//! greedy plan with a *ladder* of planning rungs, each running under a
//! shared budget and each handing its best plan to the next:
//!
//! | rung | method | scope |
//! |------|--------|-------|
//! | 0 | GOO greedy seed | always |
//! | 1 | exact blitzsplit DP | `n ≤ max_exact_rels` |
//! | 2 | IKKBZ-seeded sliding-window block DP | any `n ≤ 128` |
//! | 3 | stochastic refinement (II + SA) | any `n ≤ 128` |
//!
//! The result ([`LadderReport`]) carries provenance — the rung that
//! produced the plan, the budget spent, and an optimality gap measured
//! against the exact optimum when rung 1 ran, else against the greedy
//! seed — so callers (the service wire protocol, the CLI, benchmarks)
//! can report *how good* a plan is, not just return one.
//!
//! Queries larger than `blitz-core`'s [`blitz_core::MAX_RELS`] bit-set
//! cap are represented by [`BigSpec`], a `u128`-set specification with
//! plan re-costing but no DP table; the ladder's rung 2 carves
//! table-sized [`blitz_core::JoinSpec`] sub-problems out of it so the
//! exact optimizer still does the local heavy lifting.

#![warn(missing_docs)]

pub mod anytime;
pub mod bigspec;

pub use anytime::{
    goo_big, linear_order, optimize_ladder, BudgetSpent, GapBasis, LadderConfig, LadderReport,
    Rung, RungTrace,
};
pub use bigspec::{BigSpec, MAX_BIG_RELS};
