//! Join *hypergraphs*: predicates spanning more than two relations.
//!
//! Section 5 of the paper closes with:
//!
//! > Similar techniques can accommodate implied or redundant predicates
//! > and join hypergraphs, but we shall not discuss those topics here.
//!
//! This module supplies the hypergraph half. A hyperpredicate (e.g.
//! `R.a + S.b = T.c`) references a *set* of relations and its selectivity
//! applies exactly when all of them are present — the natural
//! generalization of Section 5.1's induced-subgraph argument. The binary
//! fan recurrence does not survive the generalization (a hyperedge
//! containing `min S` may straddle any split of the remainder), but a
//! different O(2^n)-total recurrence does:
//!
//! ```text
//! card(S) = card(u) · card(S − u) · Π { sel(e) : e ⊆ S, u ∈ e }
//! ```
//!
//! with `u = {min S}`. Every hyperedge inside `S` either avoids `u` — and
//! is then counted inside `card(S − u)` by induction — or contains `u`
//! and is folded in exactly once here. Grouping hyperedges by their
//! minimum relation makes the per-subset work proportional to that
//! relation's edge list, preserving the paper's promise that property
//! computation stays `O(2^n)`-ish and, crucially, leaving
//! `find_best_split` completely untouched.

use crate::bitset::RelSet;
use crate::cartesian::Optimized;
use crate::cost::CostModel;
use crate::plan::Plan;
use crate::spec::SpecError;
use crate::split::{drive, init_singleton};
use crate::stats::{NoStats, Stats};
use crate::table::{AosTable, TableLayout, MAX_TABLE_RELS};

/// A join problem whose predicates may reference any number of relations.
#[derive(Clone, Debug, PartialEq)]
pub struct HyperSpec {
    cards: Vec<f64>,
    /// All hyperedges `(relation set, selectivity)`.
    edges: Vec<(RelSet, f64)>,
    /// Edge indices grouped by the edge's minimum relation.
    by_min: Vec<Vec<usize>>,
}

impl HyperSpec {
    /// Build a hypergraph join problem. Binary predicates are just
    /// two-element hyperedges, so this strictly generalizes
    /// [`crate::spec::JoinSpec`].
    ///
    /// # Errors
    /// Rejects empty problems, oversized problems, nonpositive
    /// cardinalities/selectivities, and hyperedges with fewer than two
    /// relations or out-of-range members.
    pub fn new(cards: &[f64], hyperedges: &[(&[usize], f64)]) -> Result<HyperSpec, SpecError> {
        let n = cards.len();
        if n == 0 {
            return Err(SpecError::Empty);
        }
        if n > MAX_TABLE_RELS {
            return Err(SpecError::TooManyRels(n));
        }
        for (rel, &card) in cards.iter().enumerate() {
            if !(card.is_finite() && card > 0.0) {
                return Err(SpecError::BadCardinality { rel, card });
            }
        }
        let mut edges = Vec::with_capacity(hyperedges.len());
        let mut by_min = vec![Vec::new(); n];
        for &(rels, sel) in hyperedges {
            let set: RelSet = rels.iter().copied().collect();
            if set.len() < 2
                || rels.iter().any(|&r| r >= n)
                || set.len() != rels.len()
                || !(sel.is_finite() && sel > 0.0)
            {
                return Err(SpecError::BadPredicate {
                    lhs: rels.first().copied().unwrap_or(0),
                    rhs: rels.get(1).copied().unwrap_or(0),
                    selectivity: sel,
                });
            }
            by_min[set.min_rel().expect("nonempty")].push(edges.len());
            edges.push((set, sel));
        }
        Ok(HyperSpec { cards: cards.to_vec(), edges, by_min })
    }

    /// Number of relations.
    pub fn n(&self) -> usize {
        self.cards.len()
    }

    /// The full relation set.
    pub fn all_rels(&self) -> RelSet {
        RelSet::full(self.n())
    }

    /// Base cardinality of relation `rel`.
    pub fn card(&self, rel: usize) -> f64 {
        self.cards[rel]
    }

    /// All hyperedges.
    pub fn edges(&self) -> &[(RelSet, f64)] {
        &self.edges
    }

    /// Closed-form join cardinality of `s`: member cardinalities times
    /// the selectivities of all hyperedges wholly inside `s` (the
    /// induced-subhypergraph rule). Reference implementation for tests.
    pub fn join_cardinality(&self, s: RelSet) -> f64 {
        let mut card = 1.0;
        for r in s.iter() {
            card *= self.cards[r];
        }
        for &(e, sel) in &self.edges {
            if e.is_subset_of(s) {
                card *= sel;
            }
        }
        card
    }

    /// Product of selectivities of hyperedges inside `s` that contain
    /// `min s` — the per-subset factor of the recurrence.
    #[inline]
    fn min_factor(&self, s: RelSet) -> f64 {
        let Some(u) = s.min_rel() else { return 1.0 };
        let mut f = 1.0;
        for &ei in &self.by_min[u] {
            let (e, sel) = self.edges[ei];
            if e.is_subset_of(s) {
                f *= sel;
            }
        }
        f
    }

    /// `true` iff some hyperedge has members on both sides (so joining
    /// `u` and `v` is not a pure Cartesian product).
    pub fn spans(&self, u: RelSet, v: RelSet) -> bool {
        self.edges
            .iter()
            .any(|&(e, _)| !e.intersect(u).is_empty() && !e.intersect(v).is_empty())
    }
}

/// `compute_properties` for hypergraphs: the min-relation recurrence.
#[inline]
fn hyper_properties<L: TableLayout, M: CostModel>(
    table: &mut L,
    model: &M,
    spec: &HyperSpec,
    s: RelSet,
) {
    let u = s.lowest_singleton();
    let v = s - u;
    let card = table.card(u) * table.card(v) * spec.min_factor(s);
    table.set_card(s, card);
    if M::HAS_AUX {
        table.set_aux(s, model.aux(card));
    }
}

/// Run the hypergraph optimizer with full control; see
/// [`optimize_hyper`] for the convenient form.
///
/// # Panics
/// Panics if the problem exceeds [`MAX_TABLE_RELS`].
pub fn optimize_hyper_into<L, M, St, const PRUNE: bool>(
    spec: &HyperSpec,
    model: &M,
    cap: f32,
    stats: &mut St,
) -> L
where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    let n = spec.n();
    assert!(n <= MAX_TABLE_RELS);
    let mut table = L::with_rels(n);
    for rel in 0..n {
        init_singleton(&mut table, model, rel, spec.card(rel));
    }
    drive::<L, M, St, _, PRUNE>(
        &mut table,
        model,
        n,
        cap,
        crate::conv::RowEngine::with_kernel(crate::kernel::ResolvedKernel::Scalar),
        stats,
        |t, m, s| hyper_properties(t, m, spec, s),
    );
    table
}

/// Optimize a hypergraph join problem over the complete bushy space,
/// Cartesian products included — `find_best_split` is reused verbatim;
/// only the cardinality computation differs.
pub fn optimize_hyper<M: CostModel>(spec: &HyperSpec, model: &M) -> Result<Optimized, SpecError> {
    let mut stats = NoStats;
    let table: AosTable =
        optimize_hyper_into::<AosTable, M, NoStats, true>(spec, model, f32::INFINITY, &mut stats);
    let full = spec.all_rels();
    Ok(Optimized {
        plan: Plan::extract(&table, full),
        cost: table.cost(full),
        card: table.card(full),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Kappa0, SortMerge};
    use crate::spec::JoinSpec;

    /// 4 relations, one 3-way predicate over {0,1,2} and one binary {2,3}.
    fn mixed_spec() -> HyperSpec {
        HyperSpec::new(
            &[10.0, 20.0, 30.0, 40.0],
            &[(&[0, 1, 2], 0.001), (&[2, 3], 0.05)],
        )
        .unwrap()
    }

    /// Brute force over all splits using the closed-form cardinality.
    fn brute_force<M: CostModel>(spec: &HyperSpec, model: &M, s: RelSet) -> f32 {
        if s.is_singleton() {
            return 0.0;
        }
        let out = spec.join_cardinality(s);
        let mut best = f32::INFINITY;
        for lhs in s.proper_subsets() {
            let rhs = s - lhs;
            let c = brute_force(spec, model, lhs)
                + brute_force(spec, model, rhs)
                + model.kappa(out, spec.join_cardinality(lhs), spec.join_cardinality(rhs));
            if c < best {
                best = c;
            }
        }
        best
    }

    #[test]
    fn cardinalities_match_closed_form() {
        let spec = mixed_spec();
        let mut stats = NoStats;
        let t: AosTable =
            optimize_hyper_into::<_, _, _, true>(&spec, &Kappa0, f32::INFINITY, &mut stats);
        for bits in 1u32..16 {
            let s = RelSet::from_bits(bits);
            let expect = spec.join_cardinality(s);
            let got = t.card(s);
            assert!(
                (got - expect).abs() <= expect.abs() * 1e-12 + 1e-12,
                "card({s:?}) = {got}, want {expect}"
            );
        }
        // Spot checks: the 3-way edge applies only once all of {0,1,2}
        // are present.
        assert_eq!(t.card(RelSet::from_bits(0b0011)), 200.0); // no edge inside
        assert_eq!(t.card(RelSet::from_bits(0b0111)), 6.0); // 6000 · 0.001
    }

    #[test]
    fn matches_brute_force() {
        let specs = vec![
            mixed_spec(),
            // Pure hyperedge over everything.
            HyperSpec::new(&[5.0, 6.0, 7.0, 8.0], &[(&[0, 1, 2, 3], 1e-2)]).unwrap(),
            // Two overlapping 3-way edges.
            HyperSpec::new(
                &[50.0, 40.0, 30.0, 20.0, 10.0],
                &[(&[0, 1, 2], 0.01), (&[2, 3, 4], 0.02), (&[0, 4], 0.5)],
            )
            .unwrap(),
        ];
        for spec in &specs {
            for check in 0..2 {
                let (got, want) = if check == 0 {
                    let o = optimize_hyper(spec, &Kappa0).unwrap();
                    (o.cost, brute_force(spec, &Kappa0, spec.all_rels()))
                } else {
                    let o = optimize_hyper(spec, &SortMerge).unwrap();
                    (o.cost, brute_force(spec, &SortMerge, spec.all_rels()))
                };
                let tol = want.abs() * 1e-4 + 1e-4;
                assert!((got - want).abs() <= tol, "hyper {got} vs brute {want}");
            }
        }
    }

    #[test]
    fn binary_edges_reduce_to_join_spec() {
        // A HyperSpec of only binary edges must agree with the ordinary
        // join optimizer on the same problem.
        let cards = [10.0, 20.0, 30.0, 40.0];
        let pairs = [(0usize, 1usize, 0.1), (0, 2, 0.2), (1, 2, 0.3), (0, 3, 0.4)];
        let members: Vec<[usize; 2]> = pairs.iter().map(|&(a, b, _)| [a, b]).collect();
        let hyperedges: Vec<(&[usize], f64)> = members
            .iter()
            .zip(&pairs)
            .map(|(m, &(_, _, s))| (&m[..], s))
            .collect();
        let hyper = HyperSpec::new(&cards, &hyperedges).unwrap();
        let flat = JoinSpec::new(&cards, &pairs).unwrap();
        let h = optimize_hyper(&hyper, &Kappa0).unwrap();
        let j = crate::join::optimize_join(&flat, &Kappa0).unwrap();
        assert_eq!(h.cost, j.cost);
        assert_eq!(h.card, j.card);
    }

    #[test]
    fn hyperedge_changes_the_optimal_shape() {
        // Without the 3-way edge, {0,1} would be a big product; with it
        // the optimizer delays until relation 2 arrives. Verify the plan
        // actually differs from the edge-free optimum.
        let with = mixed_spec();
        let without = HyperSpec::new(&[10.0, 20.0, 30.0, 40.0], &[(&[2, 3], 0.05)]).unwrap();
        let a = optimize_hyper(&with, &Kappa0).unwrap();
        let b = optimize_hyper(&without, &Kappa0).unwrap();
        assert!(a.cost < b.cost);
    }

    #[test]
    fn spans_detects_hyperedge_straddles() {
        let spec = mixed_spec();
        let u = RelSet::from_bits(0b0011); // {0,1}
        let v = RelSet::from_bits(0b0100); // {2}
        assert!(spec.spans(u, v)); // the 3-way edge straddles
        assert!(!spec.spans(RelSet::from_bits(0b0001), RelSet::from_bits(0b1000)));
    }

    #[test]
    fn validation() {
        assert!(HyperSpec::new(&[], &[]).is_err());
        assert!(HyperSpec::new(&[1.0], &[(&[0, 0], 0.5)]).is_err()); // dup member
        assert!(HyperSpec::new(&[1.0, 2.0], &[(&[0], 0.5)]).is_err()); // too small
        assert!(HyperSpec::new(&[1.0, 2.0], &[(&[0, 5], 0.5)]).is_err()); // range
        assert!(HyperSpec::new(&[1.0, 2.0], &[(&[0, 1], 0.0)]).is_err()); // sel
        assert!(HyperSpec::new(&[1.0, -1.0], &[]).is_err()); // card
    }

    #[test]
    fn single_relation() {
        let spec = HyperSpec::new(&[3.0], &[]).unwrap();
        let o = optimize_hyper(&spec, &Kappa0).unwrap();
        assert_eq!(o.plan, Plan::scan(0));
        assert_eq!(o.cost, 0.0);
    }
}
