//! Shadow access checker for the rank-wave parallel driver.
//!
//! The wave discipline — each table row written by exactly one worker of
//! its own wave, reads confined to strictly-smaller-popcount rows of
//! earlier waves — is what makes the ~95 `unsafe` raw-pointer accesses in
//! [`crate::table`] sound. This module turns that prose contract into a
//! machine check:
//!
//! * Under `--cfg blitz_check`, every [`crate::table::SyncTableView`]
//!   accessor is tagged with the worker's id and current wave popcount
//!   and validated against a **shadow table**: one atomic epoch/owner
//!   word per DP row recording which (wave, worker) last wrote it. Any
//!   cross-wave write, double-write within a wave, future-wave read, or
//!   same-wave read of a row owned by another worker panics with a
//!   precise diagnostic naming the row, the wave, and both workers.
//! * Under plain `debug_assertions` (without `blitz_check`), a cheaper
//!   subset runs with no atomics: writes must target the current wave's
//!   popcount and, for the chunked schedule, fall inside the worker's
//!   chunk of the wave's Gosper enumeration (colex rank bounds).
//! * In ordinary release builds this whole module is compiled out and
//!   the instrumentation is a true no-op — the hotpath harness pins
//!   that down.
//!
//! The third leg of the safety contract — "no `&`/`&mut` to the whole
//! shared table inside worker closures" — is a *static* property of the
//! source and cannot be observed at runtime; `cargo xtask lint` enforces
//! it instead.

use crate::bitset::RelSet;

#[cfg(blitz_check)]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-row shadow word layout (`blitz_check` only):
///
/// ```text
/// bit 63      : WRITTEN flag (0 ⇒ the row was never written via a view)
/// bits 32..40 : wave popcount of the last write (k ≤ MAX_RELS < 2^8)
/// bits  0..32 : id of the worker that performed the last write
/// ```
#[cfg(blitz_check)]
const WRITTEN: u64 = 1 << 63;

#[cfg(blitz_check)]
fn encode(wave: usize, worker: usize) -> u64 {
    WRITTEN | ((wave as u64) << 32) | (worker as u64 & 0xffff_ffff)
}

#[cfg(blitz_check)]
fn decode(word: u64) -> Option<(usize, usize)> {
    if word & WRITTEN == 0 {
        None
    } else {
        Some((((word >> 32) & 0xff) as usize, (word & 0xffff_ffff) as usize))
    }
}

/// Shadow table shared by every view of one [`crate::table::SyncTable`]:
/// one epoch/owner word per DP row plus the worker-id allocator.
#[cfg(blitz_check)]
pub(crate) struct ShadowState {
    words: Box<[AtomicU64]>,
    next_worker: AtomicUsize,
}

#[cfg(blitz_check)]
impl ShadowState {
    /// Shadow words for a `2^n`-row table, all "never written".
    pub(crate) fn new(n: usize) -> ShadowState {
        let mut words = Vec::new();
        words.resize_with(1usize << n, || AtomicU64::new(0));
        ShadowState { words: words.into_boxed_slice(), next_worker: AtomicUsize::new(0) }
    }

    /// Allocate the next worker id (one per view).
    pub(crate) fn next_worker(&self) -> usize {
        self.next_worker.fetch_add(1, Ordering::SeqCst)
    }
}

/// One view's instrumentation state: the wave/chunk the view is currently
/// processing, its worker id, and the pointer to the shared shadow table.
/// Present only in checked builds; the plain-`debug_assertions` flavour
/// carries no shadow pointer and no worker id.
#[derive(Copy, Clone)]
pub(crate) struct WaveGuard {
    /// Current wave popcount; `None` ⇒ unconstrained (single-threaded
    /// test usage outside a wave driver).
    wave: Option<usize>,
    /// Colex rank bounds `[lo, hi)` of this worker's chunk within the
    /// wave's Gosper enumeration; `None` for the round-robin schedule
    /// (ownership is row-index parity, not a contiguous rank range).
    chunk: Option<(u64, u64)>,
    #[cfg(blitz_check)]
    worker: usize,
    #[cfg(blitz_check)]
    shadow: *const ShadowState,
}

impl WaveGuard {
    /// Guard for a freshly created view: no wave in progress.
    #[cfg(not(blitz_check))]
    pub(crate) fn unconstrained() -> WaveGuard {
        WaveGuard { wave: None, chunk: None }
    }

    /// Guard for a freshly created view: no wave in progress, worker id
    /// drawn from the shared shadow state.
    #[cfg(blitz_check)]
    pub(crate) fn unconstrained(shadow: &ShadowState) -> WaveGuard {
        WaveGuard { wave: None, chunk: None, worker: shadow.next_worker(), shadow }
    }

    /// Enter wave `k`, optionally bounding this worker's writes to the
    /// colex rank range `chunk` within the wave.
    pub(crate) fn begin_wave(&mut self, k: usize, chunk: Option<(u64, u64)>) {
        self.wave = Some(k);
        self.chunk = chunk;
    }

    #[cfg(blitz_check)]
    fn shadow(&self) -> &ShadowState {
        // SAFETY: the shadow state is owned by the `SyncTable` this
        // view was created from, and the view contract keeps that table
        // (and hence the shadow) alive for the view's whole lifetime.
        unsafe { &*self.shadow }
    }

    /// Validate a write to row `s` under the wave discipline. Called by
    /// every `set_*` accessor of `SyncTableView` in checked builds.
    #[inline]
    pub(crate) fn check_write(&self, s: RelSet) {
        let Some(k) = self.wave else { return };
        let p = s.len();
        assert!(
            p == k,
            "wave-discipline violation: write to row {s:?} (popcount {p}) during wave {k} \
             — workers may only write rows of the current wave"
        );
        if let Some((lo, hi)) = self.chunk {
            let rank = crate::split::rank_same_popcount(u64::from(s.bits()));
            assert!(
                lo <= rank && rank < hi,
                "wave-discipline violation: write to row {s:?} at wave rank {rank}, outside \
                 this worker's chunk [{lo}, {hi}) of wave {k}"
            );
        }
        #[cfg(blitz_check)]
        {
            let word = &self.shadow().words[s.index()];
            let prev = word.swap(encode(k, self.worker), Ordering::SeqCst);
            if let Some((pw, po)) = decode(prev) {
                assert!(
                    pw != k || po == self.worker,
                    "wave-discipline violation: row {s:?} written by worker {po} and worker {} \
                     in the same wave {k} — per-wave row ownership must be disjoint",
                    self.worker
                );
            }
        }
    }

    /// Validate a read of row `s` under the wave discipline. Called by
    /// every getter of `SyncTableView` under `blitz_check`. (The
    /// plain-`debug_assertions` flavour checks writes only: read
    /// validation needs the shadow ownership words.)
    #[inline]
    pub(crate) fn check_read(&self, s: RelSet) {
        let Some(k) = self.wave else { return };
        let p = s.len();
        assert!(
            p <= k,
            "wave-discipline violation: read of row {s:?} (popcount {p}) during wave {k} \
             — rows of later waves are still being written"
        );
        #[cfg(blitz_check)]
        if p == k {
            let word = self.shadow().words[s.index()].load(Ordering::SeqCst);
            match decode(word) {
                Some((pw, po)) if pw == k && po == self.worker => {}
                Some((pw, po)) => panic!(
                    "wave-discipline violation: worker {} read row {s:?} of the current wave \
                     {k}, but the row was last written by worker {po} in wave {pw} — same-wave \
                     reads are only sound on a worker's own row",
                    self.worker
                ),
                None => panic!(
                    "wave-discipline violation: worker {} read row {s:?} of the current wave \
                     {k} before any worker wrote it",
                    self.worker
                ),
            }
        }
    }
}

// SAFETY: the guard's shadow pointer targets `ShadowState`, whose shared
// surface is entirely atomic; sending the guard to a worker thread moves
// only plain data and that pointer.
#[cfg(blitz_check)]
unsafe impl Send for WaveGuard {}

#[cfg(all(test, blitz_check))]
mod tests {
    use crate::bitset::RelSet;
    use crate::table::{AosTable, SyncTable, TableLayout};

    /// Seeded cross-wave write: a worker in wave 2 writes a popcount-3
    /// row. The shadow checker must fire — this is the self-test proving
    /// the instrumentation is live, not silently compiled out.
    #[test]
    #[should_panic(expected = "wave-discipline violation")]
    fn cross_wave_write_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread; the seeded violation is the
        // checker's to catch, not a real race.
        let mut view = unsafe { shared.view() };
        view.begin_wave(2, None);
        view.set_cost(RelSet::from_bits(0b0111), 1.0); // popcount 3 in wave 2
    }

    #[test]
    #[should_panic(expected = "same wave")]
    fn double_write_same_wave_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: two views on one thread; accesses are sequential, so
        // there is no real race — only the seeded ownership violation.
        let mut a = unsafe { shared.view() };
        let mut b = unsafe { shared.view() }; // SAFETY: as above.
        a.begin_wave(2, None);
        b.begin_wave(2, None);
        a.set_cost(RelSet::from_bits(0b0011), 1.0);
        b.set_cost(RelSet::from_bits(0b0011), 2.0); // same row, same wave, other worker
    }

    #[test]
    #[should_panic(expected = "later waves")]
    fn future_wave_read_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread.
        let mut view = unsafe { shared.view() };
        view.begin_wave(2, None);
        let _ = view.cost(RelSet::from_bits(0b0111)); // popcount 3 in wave 2
    }

    #[test]
    #[should_panic(expected = "own row")]
    fn same_wave_foreign_read_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: two views on one thread, sequential accesses.
        let mut a = unsafe { shared.view() };
        let mut b = unsafe { shared.view() }; // SAFETY: as above.
        a.begin_wave(2, None);
        b.begin_wave(2, None);
        a.set_card(RelSet::from_bits(0b0011), 10.0);
        let _ = b.card(RelSet::from_bits(0b0011)); // another worker's wave-2 row
    }

    #[test]
    #[should_panic(expected = "before any worker wrote it")]
    fn unwritten_own_wave_read_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread.
        let mut view = unsafe { shared.view() };
        view.begin_wave(2, None);
        let _ = view.card(RelSet::from_bits(0b0011)); // never written in this wave
    }

    #[test]
    #[should_panic(expected = "outside this worker's chunk")]
    fn out_of_chunk_write_is_detected() {
        let mut t = AosTable::with_rels(6);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread.
        let mut view = unsafe { shared.view() };
        // Wave 2 of n=6 has C(6,2)=15 rows; claim ranks [0, 4) only.
        view.begin_wave(2, Some((0, 4)));
        // 0b110000 = {R4,R5} is the *last* wave-2 row (rank 14).
        view.set_cost(RelSet::from_bits(0b11_0000), 1.0);
    }

    /// The legitimate pattern — write your own row, read prior-wave and
    /// own-row data — passes through the checker untouched.
    #[test]
    fn wave_discipline_is_accepted() {
        let mut t = AosTable::with_rels(4);
        for rel in 0..4 {
            t.set_cost(RelSet::singleton(rel), 0.0);
            t.set_card(RelSet::singleton(rel), 2.0);
        }
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread.
        let mut view = unsafe { shared.view() };
        for k in 2..=4usize {
            view.begin_wave(k, None);
            for bits in 1u32..16 {
                let s = RelSet::from_bits(bits);
                if s.len() != k {
                    continue;
                }
                let u = s.lowest_singleton();
                let v = s - u;
                let card = view.card(u) * view.card(v); // prior-wave reads
                view.set_card(s, card);
                let own = view.card(s); // own-row read after own write
                view.set_cost(s, own as f32);
            }
        }
    }
}
