//! Numeric problem specification: base-relation cardinalities and predicate
//! selectivities (paper Section 5.1).
//!
//! A join-ordering problem is fully characterized — as far as the optimizer
//! is concerned — by the `n` base cardinalities and the selectivity of the
//! (at most one) predicate connecting each pair of relations. Pairs without
//! a predicate get selectivity 1, which is exactly how the paper's
//! algorithm "discovers" the join-graph topology without analyzing it:
//!
//! > From our algorithm's point of view, all join graphs are actually
//! > cliques, and are distinguished only by the selectivities associated
//! > with the predicates in these cliques. (Section 6.3)
//!
//! Higher-level concepts (named relations, predicates, topologies, the
//! Appendix workload generator) live in the `blitz-catalog` crate and lower
//! into a [`JoinSpec`].

use crate::bitset::{RelSet, MAX_RELS};

/// Errors raised when constructing or optimizing a [`JoinSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The specification names no relations.
    Empty,
    /// More relations than [`MAX_RELS`] / the table guard allows.
    TooManyRels(usize),
    /// A cardinality was nonpositive or non-finite.
    BadCardinality {
        /// The offending relation.
        rel: usize,
        /// The offending cardinality.
        card: f64,
    },
    /// A selectivity was nonpositive or non-finite, or connected a relation
    /// to itself, or referenced an out-of-range relation.
    BadPredicate {
        /// First endpoint as given.
        lhs: usize,
        /// Second endpoint as given.
        rhs: usize,
        /// The offending selectivity.
        selectivity: f64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Empty => write!(f, "specification names no relations"),
            SpecError::TooManyRels(n) => write!(f, "{n} relations exceed the supported maximum"),
            SpecError::BadCardinality { rel, card } => {
                write!(f, "relation R{rel} has invalid cardinality {card}")
            }
            SpecError::BadPredicate { lhs, rhs, selectivity } => {
                write!(f, "predicate R{lhs}~R{rhs} has invalid selectivity {selectivity}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A join-ordering problem: base cardinalities plus a symmetric selectivity
/// matrix (entry 1.0 ⇔ no predicate).
///
/// Selectivities are allowed to exceed 1: the Appendix's selectivity
/// formula can produce values slightly above 1 for very small relations,
/// and nothing in the algorithm requires `σ ≤ 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinSpec {
    cards: Vec<f64>,
    /// Row-major `n × n` symmetric matrix; diagonal unused (1.0).
    sel: Vec<f64>,
}

impl JoinSpec {
    /// A pure Cartesian-product problem: no predicates at all (Section 3).
    pub fn cartesian(cards: &[f64]) -> Result<JoinSpec, SpecError> {
        JoinSpec::new(cards, &[])
    }

    /// Build a specification from cardinalities and a predicate list
    /// `(i, j, selectivity)`.
    ///
    /// Multiple predicates between the same pair multiply together (the
    /// pair's effective selectivity is their product), which matches the
    /// semantics of conjunctive predicates spanning the same two relations.
    pub fn new(cards: &[f64], predicates: &[(usize, usize, f64)]) -> Result<JoinSpec, SpecError> {
        let n = cards.len();
        if n == 0 {
            return Err(SpecError::Empty);
        }
        if n > MAX_RELS {
            return Err(SpecError::TooManyRels(n));
        }
        for (rel, &card) in cards.iter().enumerate() {
            if !(card.is_finite() && card > 0.0) {
                return Err(SpecError::BadCardinality { rel, card });
            }
        }
        let mut sel = vec![1.0f64; n * n];
        for &(i, j, s) in predicates {
            if i >= n || j >= n || i == j || !(s.is_finite() && s > 0.0) {
                return Err(SpecError::BadPredicate { lhs: i, rhs: j, selectivity: s });
            }
            sel[i * n + j] *= s;
            sel[j * n + i] *= s;
        }
        Ok(JoinSpec { cards: cards.to_vec(), sel })
    }

    /// Number of base relations `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.cards.len()
    }

    /// The set `{R_0, …, R_{n-1}}` of all relations in the problem.
    #[inline]
    pub fn all_rels(&self) -> RelSet {
        RelSet::full(self.n())
    }

    /// Cardinality of base relation `rel`.
    #[inline]
    pub fn card(&self, rel: usize) -> f64 {
        self.cards[rel]
    }

    /// All base cardinalities.
    #[inline]
    pub fn cards(&self) -> &[f64] {
        &self.cards
    }

    /// Effective selectivity between relations `i` and `j` (1.0 ⇔ no
    /// predicate).
    #[inline]
    pub fn selectivity(&self, i: usize, j: usize) -> f64 {
        self.sel[i * self.n() + j]
    }

    /// `true` iff a (non-trivial) predicate connects `i` and `j`.
    #[inline]
    pub fn has_predicate(&self, i: usize, j: usize) -> bool {
        self.selectivity(i, j) != 1.0
    }

    /// Iterate over the join-graph edges `(i, j, σ)` with `i < j` and
    /// `σ ≠ 1`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n();
        (0..n).flat_map(move |i| {
            ((i + 1)..n).filter_map(move |j| {
                let s = self.selectivity(i, j);
                (s != 1.0).then_some((i, j, s))
            })
        })
    }

    /// Number of join-graph edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// The product of the selectivities of all predicates *spanning* `u`
    /// and `v` — `Π_span(U, V)` of equation (8). Reference implementation
    /// (quadratic in set sizes); the optimizer uses the fan recurrence
    /// instead.
    pub fn pi_span(&self, u: RelSet, v: RelSet) -> f64 {
        debug_assert!(u.is_disjoint(v));
        let mut p = 1.0;
        for i in u.iter() {
            for j in v.iter() {
                p *= self.selectivity(i, j);
            }
        }
        p
    }

    /// The fan of `s` per the Section 5.3 definition: the selectivity
    /// product over predicates spanning `{min S}` and `S − {min S}`.
    /// Reference implementation.
    pub fn pi_fan(&self, s: RelSet) -> f64 {
        let u = s.lowest_singleton();
        if u == s || u.is_empty() {
            return 1.0;
        }
        self.pi_span(u, s - u)
    }

    /// Closed-form join cardinality of the subset `s`: the product of the
    /// member cardinalities and the selectivities of all predicates in the
    /// *induced subgraph* (Section 5.1). Reference implementation used by
    /// tests and baselines; the optimizer computes the same value through
    /// recurrences (7)/(10)/(11).
    pub fn join_cardinality(&self, s: RelSet) -> f64 {
        let mut card = 1.0;
        for i in s.iter() {
            card *= self.cards[i];
        }
        let members: Vec<usize> = s.iter().collect();
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                card *= self.selectivity(i, j);
            }
        }
        card
    }

    /// `true` iff the subgraph induced by `s` is connected (joining `s`
    /// requires no Cartesian product). Singletons are connected.
    pub fn is_connected(&self, s: RelSet) -> bool {
        let Some(start) = s.min_rel() else { return true };
        let mut reached = RelSet::singleton(start);
        let mut frontier = reached;
        while !frontier.is_empty() {
            let mut next = RelSet::EMPTY;
            for i in frontier.iter() {
                for j in (s - reached).iter() {
                    if self.has_predicate(i, j) {
                        next = next.with(j);
                    }
                }
            }
            reached = reached | next;
            frontier = next;
        }
        reached == s
    }

    /// `true` iff `u` and `v` are connected to each other by at least one
    /// predicate (their join is not a Cartesian product).
    pub fn spans(&self, u: RelSet, v: RelSet) -> bool {
        for i in u.iter() {
            for j in v.iter() {
                if self.has_predicate(i, j) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Figure 3): relations A,B,C,D = R0..R3,
    /// predicates AB, AC, BC, AD.
    fn fig3_spec() -> JoinSpec {
        JoinSpec::new(
            &[10.0, 20.0, 30.0, 40.0],
            &[(0, 1, 0.1), (0, 2, 0.2), (1, 2, 0.3), (0, 3, 0.4)],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let spec = fig3_spec();
        assert_eq!(spec.n(), 4);
        assert_eq!(spec.card(2), 30.0);
        assert_eq!(spec.selectivity(0, 1), 0.1);
        assert_eq!(spec.selectivity(1, 0), 0.1);
        assert_eq!(spec.selectivity(1, 3), 1.0);
        assert!(spec.has_predicate(0, 3));
        assert!(!spec.has_predicate(2, 3));
        assert_eq!(spec.edge_count(), 4);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(JoinSpec::cartesian(&[]).unwrap_err(), SpecError::Empty);
        assert!(matches!(
            JoinSpec::cartesian(&[1.0, -2.0]).unwrap_err(),
            SpecError::BadCardinality { rel: 1, .. }
        ));
        assert!(matches!(
            JoinSpec::new(&[1.0, 2.0], &[(0, 0, 0.5)]).unwrap_err(),
            SpecError::BadPredicate { .. }
        ));
        assert!(matches!(
            JoinSpec::new(&[1.0, 2.0], &[(0, 5, 0.5)]).unwrap_err(),
            SpecError::BadPredicate { .. }
        ));
        assert!(matches!(
            JoinSpec::new(&[1.0, 2.0], &[(0, 1, 0.0)]).unwrap_err(),
            SpecError::BadPredicate { .. }
        ));
        let too_many = vec![1.0; MAX_RELS + 1];
        assert!(matches!(JoinSpec::cartesian(&too_many).unwrap_err(), SpecError::TooManyRels(_)));
    }

    #[test]
    fn duplicate_predicates_multiply() {
        let spec = JoinSpec::new(&[10.0, 10.0], &[(0, 1, 0.5), (1, 0, 0.5)]).unwrap();
        assert_eq!(spec.selectivity(0, 1), 0.25);
    }

    #[test]
    fn fig3_fan_example() {
        // Fan of S = {A,B,C} is {AB, AC}: σ_AB · σ_AC = 0.1 · 0.2.
        let spec = fig3_spec();
        let s = RelSet::from_bits(0b0111);
        assert!((spec.pi_fan(s) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn pi_span_spanning_predicates() {
        // Split {A,B,C} into U={A}, V={B,C}: spanning predicates AB, AC.
        let spec = fig3_spec();
        let u = RelSet::from_bits(0b001);
        let v = RelSet::from_bits(0b110);
        assert!((spec.pi_span(u, v) - 0.02).abs() < 1e-12);
        // U={B}, V={A,C}: spanning AB, BC = 0.1·0.3
        let u = RelSet::from_bits(0b010);
        let v = RelSet::from_bits(0b101);
        assert!((spec.pi_span(u, v) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn join_cardinality_closed_form() {
        let spec = fig3_spec();
        // {A,B,C}: 10·20·30 · σAB·σAC·σBC = 6000 · 0.1·0.2·0.3 = 36
        let s = RelSet::from_bits(0b0111);
        assert!((spec.join_cardinality(s) - 36.0).abs() < 1e-9);
        // Singleton: just the base cardinality.
        assert_eq!(spec.join_cardinality(RelSet::singleton(3)), 40.0);
        // {B,D}: no predicate → Cartesian product 20·40.
        assert_eq!(spec.join_cardinality(RelSet::from_bits(0b1010)), 800.0);
    }

    #[test]
    fn connectivity() {
        let spec = fig3_spec();
        assert!(spec.is_connected(RelSet::from_bits(0b0111))); // A,B,C
        assert!(spec.is_connected(RelSet::from_bits(0b1111))); // all (via A-D)
        assert!(!spec.is_connected(RelSet::from_bits(0b1110))); // B,C,D: D isolated
        assert!(spec.is_connected(RelSet::singleton(3)));
        assert!(spec.is_connected(RelSet::EMPTY));
    }

    #[test]
    fn spans_check() {
        let spec = fig3_spec();
        let bc = RelSet::from_bits(0b0110);
        let d = RelSet::singleton(3);
        let a = RelSet::singleton(0);
        assert!(!spec.spans(bc, d)); // B,C vs D: Cartesian
        assert!(spec.spans(a, d)); // A vs D: predicate AD
    }

    #[test]
    fn cartesian_spec_has_no_edges() {
        let spec = JoinSpec::cartesian(&[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(spec.edge_count(), 0);
        assert_eq!(spec.join_cardinality(RelSet::full(3)), 6000.0);
        assert!(!spec.is_connected(RelSet::full(3)));
    }
}
