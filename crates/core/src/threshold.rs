//! Pruning by plan-cost thresholds (paper Section 6.4).
//!
//! The optimizer rejects any plan whose `f32` cost overflows; Section 6.3
//! observes that this *overflow pruning* lets `find_best_split` skip whole
//! split loops when `κ'(S)` alone already overflows. Section 6.4 turns the
//! accident into a feature:
//!
//! > simulate the effect of overflow at a plan-cost threshold far below
//! > actual overflow. … In those cases where no plan exists with cost
//! > below the threshold, optimization fails, and it is then necessary to
//! > re-optimize with a higher threshold.
//!
//! Queries with cheap plans optimize faster; queries whose best plan is
//! expensive pay for one or more extra passes — "but since these queries
//! are expected to be long-running at execution time, the extra investment
//! … is not onerous."

use crate::bitset::RelSet;
use crate::cartesian::Optimized;
use crate::cost::CostModel;
use crate::join::{fill_join_table_with, optimize_join_into};
use crate::plan::{Plan, PlanArena, PlanNodeId};
use crate::spec::{JoinSpec, SpecError};
use crate::split::DriveOptions;
use crate::stats::{NoStats, Stats};
use crate::table::{
    AosTable, HotColdTable, LayoutChoice, SoaTable, TableLayout, WaveTableLayout, MAX_TABLE_RELS,
};

/// An escalation schedule of plan-cost thresholds.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ThresholdSchedule {
    /// Threshold for the first optimization pass.
    pub initial: f32,
    /// Multiplier applied after each failed pass (> 1).
    pub factor: f32,
    /// Maximum number of *thresholded* passes before falling back to an
    /// uncapped pass. At least 1.
    pub max_passes: u32,
}

impl ThresholdSchedule {
    /// Schedule starting at `initial`, escalating by `factor` each failure.
    ///
    /// # Panics
    /// Panics if `initial` is not positive and finite, if `factor ≤ 1`, or
    /// if `max_passes == 0`.
    pub fn new(initial: f32, factor: f32, max_passes: u32) -> ThresholdSchedule {
        assert!(initial.is_finite() && initial > 0.0, "initial threshold must be positive");
        assert!(factor > 1.0, "escalation factor must exceed 1");
        assert!(max_passes >= 1, "at least one pass is required");
        ThresholdSchedule { initial, factor, max_passes }
    }

    /// A single fixed-threshold pass followed by an uncapped fallback —
    /// the configuration used for Figure 6(a).
    pub fn single(threshold: f32) -> ThresholdSchedule {
        ThresholdSchedule::new(threshold, 2.0, 1)
    }
}

impl Default for ThresholdSchedule {
    /// The paper's Figure 6 uses thresholds like `10^9` (κ0) and
    /// `10^5`/`10^14` (κ_dnl); a default of `10^9` escalating by `10^5`
    /// covers both regimes within a few passes.
    fn default() -> ThresholdSchedule {
        ThresholdSchedule::new(1e9, 1e5, 6)
    }
}

/// Result of a (possibly multi-pass) thresholded optimization.
#[derive(Clone, Debug)]
pub struct ThresholdOutcome {
    /// The optimal plan found by the successful pass.
    pub optimized: Optimized,
    /// Total optimization passes executed (1 ⇒ first threshold sufficed).
    pub passes: u32,
    /// The cost cap in force during the successful pass (`+∞` if the
    /// uncapped fallback ran).
    pub final_cap: f32,
}

/// Thresholded join optimization with full control over the table layout,
/// statistics sink and pruning switch; returns the last pass's table
/// together with the outcome. Statistics accumulate across passes (the
/// `passes` counter distinguishes them).
///
/// The plan found by a *successful* thresholded pass is the true optimum:
/// a pass only succeeds when the best plan's cost is below the cap, and
/// every plan rejected by the cap costs at least the cap, so no rejected
/// plan could have beaten it.
///
/// # Panics
/// Panics if `spec.n() > MAX_TABLE_RELS`.
pub fn optimize_join_threshold_into<L, M, St, const PRUNE: bool>(
    spec: &JoinSpec,
    model: &M,
    schedule: ThresholdSchedule,
    stats: &mut St,
) -> (L, ThresholdOutcome)
where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    let full = spec.all_rels();
    let mut cap = schedule.initial;
    let mut passes = 0u32;
    loop {
        passes += 1;
        let capped = passes <= schedule.max_passes;
        let eff_cap = if capped { cap } else { f32::INFINITY };
        let table: L = optimize_join_into::<L, M, St, PRUNE>(spec, model, eff_cap, stats);
        let cost = table.cost(full);
        if cost.is_finite() || !capped {
            let optimized = if cost.is_finite() {
                Optimized { plan: Plan::extract(&table, full), cost, card: table.card(full) }
            } else {
                // Even uncapped, every plan overflowed f32. Surface the
                // failure as an infinite-cost result with a degenerate
                // plan of the full set joined in input order so callers
                // can still execute *something*.
                let mut plan = Plan::scan(0);
                for rel in 1..spec.n() {
                    plan = Plan::join(plan, Plan::scan(rel));
                }
                Optimized { plan, cost: f32::INFINITY, card: table.card(full) }
            };
            return (table, ThresholdOutcome { optimized, passes, final_cap: eff_cap });
        }
        cap *= schedule.factor;
    }
}

/// [`optimize_join_threshold_into`] with an explicit execution policy:
/// every pass (thresholded or uncapped fallback) runs through the
/// rank-wave parallel driver when `options` resolves to two or more
/// workers. Pass outcomes — and the final table — are bit-identical to
/// the serial schedule.
///
/// # Panics
/// Panics if `spec.n() > MAX_TABLE_RELS`.
pub fn optimize_join_threshold_into_with<L, M, St, const PRUNE: bool>(
    spec: &JoinSpec,
    model: &M,
    schedule: ThresholdSchedule,
    options: DriveOptions,
    stats: &mut St,
) -> (L, ThresholdOutcome)
where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
{
    assert!(spec.n() <= MAX_TABLE_RELS, "unsupported relation count {}", spec.n());
    let mut table = L::with_rels(spec.n());
    let outcome = optimize_join_threshold_reusing_with::<L, M, St, PRUNE>(
        &mut table, spec, model, schedule, options, stats,
    );
    (table, outcome)
}

/// [`optimize_join_threshold_into_with`] over a **caller-provided** table:
/// every pass (and any escalation re-pass) fills `table` in place, so a
/// multi-pass optimization allocates nothing and a caller holding a table
/// pool — e.g. the service — can recycle `O(2^n)` allocations across
/// requests.
///
/// The table does not need to be cleared between uses: singleton rows are
/// re-initialized each pass and every non-singleton row is fully written
/// before any superset reads it, so results are bit-identical to a run on
/// a freshly allocated table (pinned by the dirty-table test below).
///
/// # Panics
/// Panics if `table.rels() != spec.n()`.
pub fn optimize_join_threshold_reusing_with<L, M, St, const PRUNE: bool>(
    table: &mut L,
    spec: &JoinSpec,
    model: &M,
    schedule: ThresholdSchedule,
    options: DriveOptions,
    stats: &mut St,
) -> ThresholdOutcome
where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
{
    let mut arena = PlanArena::with_node_capacity(2 * spec.n() - 1);
    let out = optimize_join_threshold_arena_with::<L, M, St, PRUNE>(
        table, &mut arena, spec, model, schedule, options, stats,
    );
    let optimized =
        Optimized { plan: arena.to_plan(out.root), cost: out.cost, card: out.card };
    ThresholdOutcome { optimized, passes: out.passes, final_cap: out.final_cap }
}

/// A thresholded optimization outcome whose plan lives in a caller's
/// [`PlanArena`] — see [`optimize_join_threshold_arena_with`].
#[derive(Copy, Clone, Debug)]
pub struct ArenaThresholdOutcome {
    /// Root of the extracted plan in the arena passed to the call.
    pub root: PlanNodeId,
    /// Cost of the plan (`+∞` when even the uncapped pass overflowed;
    /// the root is then a degenerate input-order left-deep vine).
    pub cost: f32,
    /// Result cardinality of the full join.
    pub card: f64,
    /// Total optimization passes executed.
    pub passes: u32,
    /// The cost cap in force during the successful pass.
    pub final_cap: f32,
}

/// [`optimize_join_threshold_reusing_with`] with plan extraction into a
/// **caller-provided** [`PlanArena`]: together with the recycled table
/// this makes the whole optimize-and-extract path allocation-free once
/// both are warm (pinned by the `no_alloc` integration suite). The
/// arena is not cleared first — recycle it with [`PlanArena::clear`]
/// between requests.
///
/// # Panics
/// Panics if `table.rels() != spec.n()`.
pub fn optimize_join_threshold_arena_with<L, M, St, const PRUNE: bool>(
    table: &mut L,
    arena: &mut PlanArena,
    spec: &JoinSpec,
    model: &M,
    schedule: ThresholdSchedule,
    options: DriveOptions,
    stats: &mut St,
) -> ArenaThresholdOutcome
where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
{
    let full = spec.all_rels();
    let mut cap = schedule.initial;
    let mut passes = 0u32;
    loop {
        passes += 1;
        let capped = passes <= schedule.max_passes;
        let eff_cap = if capped { cap } else { f32::INFINITY };
        fill_join_table_with::<L, M, St, PRUNE>(table, spec, model, eff_cap, options, stats);
        let cost = table.cost(full);
        if cost.is_finite() || !capped {
            let root = if cost.is_finite() {
                arena.extract(table, full)
            } else {
                // Even uncapped, every plan overflowed f32. Surface the
                // failure as an infinite-cost result with a degenerate
                // plan of the full set joined in input order so callers
                // can still execute *something*.
                arena.left_deep_vine(spec.n())
            };
            let cost = if cost.is_finite() { cost } else { f32::INFINITY };
            return ArenaThresholdOutcome {
                root,
                cost,
                card: table.card(full),
                passes,
                final_cap: eff_cap,
            };
        }
        cap *= schedule.factor;
    }
}

/// Thresholded join optimization with the standard defaults (AoS layout,
/// pruning on, no statistics, default [`DriveOptions`] execution policy).
///
/// # Errors
/// Returns [`SpecError::TooManyRels`] when the DP table would be too large.
pub fn optimize_join_threshold<M: CostModel + Sync>(
    spec: &JoinSpec,
    model: &M,
    schedule: ThresholdSchedule,
) -> Result<ThresholdOutcome, SpecError> {
    optimize_join_threshold_with(spec, model, schedule, DriveOptions::default())
}

/// [`optimize_join_threshold`] with an explicit execution policy
/// (worker-thread count for the rank-wave parallel driver; `1` = serial)
/// and table layout ([`DriveOptions::layout`] picks the
/// monomorphization).
///
/// # Errors
/// Returns [`SpecError::TooManyRels`] when the DP table would be too large.
pub fn optimize_join_threshold_with<M: CostModel + Sync>(
    spec: &JoinSpec,
    model: &M,
    schedule: ThresholdSchedule,
    options: DriveOptions,
) -> Result<ThresholdOutcome, SpecError> {
    if spec.n() > MAX_TABLE_RELS {
        return Err(SpecError::TooManyRels(spec.n()));
    }
    let mut stats = NoStats;
    let outcome = match options.layout {
        LayoutChoice::Aos => {
            optimize_join_threshold_into_with::<AosTable, M, NoStats, true>(
                spec, model, schedule, options, &mut stats,
            )
            .1
        }
        LayoutChoice::Soa => {
            optimize_join_threshold_into_with::<SoaTable, M, NoStats, true>(
                spec, model, schedule, options, &mut stats,
            )
            .1
        }
        LayoutChoice::HotCold => {
            optimize_join_threshold_into_with::<HotColdTable, M, NoStats, true>(
                spec, model, schedule, options, &mut stats,
            )
            .1
        }
    };
    Ok(outcome)
}

/// Convenience: a successful thresholded pass skipped the split loop for
/// this subset iff its cost is `+∞` in the returned table.
pub fn rejected_subsets<L: TableLayout>(table: &L, n: usize) -> usize {
    let mut count = 0;
    for bits in 1u32..(1u32 << n) {
        let s = RelSet::from_bits(bits);
        if !s.is_singleton() && table.cost(s).is_infinite() {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DiskNestedLoops, Kappa0};
    use crate::join::optimize_join;
    use crate::stats::Counters;

    fn chain_spec(n: usize, card: f64, sel: f64) -> JoinSpec {
        let cards = vec![card; n];
        let edges: Vec<(usize, usize, f64)> =
            (0..n - 1).map(|i| (i, i + 1, sel)).collect();
        JoinSpec::new(&cards, &edges).unwrap()
    }

    #[test]
    fn threshold_pass_finds_true_optimum_when_it_succeeds() {
        let spec = chain_spec(8, 100.0, 0.01);
        let unbounded = optimize_join(&spec, &Kappa0).unwrap();
        // Generous threshold: one pass, same optimum.
        let out =
            optimize_join_threshold(&spec, &Kappa0, ThresholdSchedule::new(1e9, 10.0, 3)).unwrap();
        assert_eq!(out.passes, 1);
        assert_eq!(out.optimized.cost, unbounded.cost);
        assert_eq!(out.optimized.plan.canonical(), unbounded.plan.canonical());
    }

    #[test]
    fn tight_threshold_forces_reoptimization() {
        // Best plan for this clique-ish query costs far more than 1.0, so
        // the first pass must fail and escalate.
        let spec = JoinSpec::new(
            &[100.0, 100.0, 100.0, 100.0],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.5)],
        )
        .unwrap();
        let unbounded = optimize_join(&spec, &Kappa0).unwrap();
        let out =
            optimize_join_threshold(&spec, &Kappa0, ThresholdSchedule::new(1.0, 100.0, 10)).unwrap();
        assert!(out.passes > 1, "expected multiple passes, got {}", out.passes);
        assert_eq!(out.optimized.cost, unbounded.cost);
    }

    #[test]
    fn exhausted_schedule_falls_back_to_uncapped() {
        let spec = chain_spec(5, 1000.0, 0.5);
        let unbounded = optimize_join(&spec, &Kappa0).unwrap();
        // Impossible thresholds with only 1 allowed pass → pass 2 uncapped.
        let out =
            optimize_join_threshold(&spec, &Kappa0, ThresholdSchedule::new(1e-3, 1.5, 1)).unwrap();
        assert_eq!(out.passes, 2);
        assert!(out.final_cap.is_infinite());
        assert_eq!(out.optimized.cost, unbounded.cost);
    }

    #[test]
    fn thresholds_skip_split_loops_on_chains() {
        // Section 6.4: with chain graphs and a threshold in place, the
        // split loop runs for only a tiny fraction of the 2^n subsets.
        let spec = chain_spec(12, 1000.0, 1e-3);
        let unbounded = optimize_join(&spec, &Kappa0).unwrap();
        assert!(unbounded.cost < 1e9);

        let mut capped = Counters::default();
        let (_, out) = optimize_join_threshold_into::<AosTable, _, _, true>(
            &spec,
            &Kappa0,
            ThresholdSchedule::single(1e9),
            &mut capped,
        );
        assert_eq!(out.passes, 1);
        assert_eq!(out.optimized.cost, unbounded.cost);
        assert!(capped.loops_skipped > 0, "threshold should skip some split loops");

        let mut uncapped = Counters::default();
        let _: AosTable =
            optimize_join_into::<_, _, _, true>(&spec, &Kappa0, f32::INFINITY, &mut uncapped);
        assert!(
            capped.loop_iters < uncapped.loop_iters,
            "thresholded pass should enumerate fewer splits ({} vs {})",
            capped.loop_iters,
            uncapped.loop_iters
        );
    }

    #[test]
    fn schedule_validation() {
        assert!(std::panic::catch_unwind(|| ThresholdSchedule::new(0.0, 2.0, 1)).is_err());
        assert!(std::panic::catch_unwind(|| ThresholdSchedule::new(1.0, 1.0, 1)).is_err());
        assert!(std::panic::catch_unwind(|| ThresholdSchedule::new(1.0, 2.0, 0)).is_err());
    }

    #[test]
    fn rejected_subsets_counts_infinite_rows() {
        let spec = chain_spec(8, 1000.0, 1e-3);
        let mut stats = NoStats;
        let (table, _) = optimize_join_threshold_into::<AosTable, _, _, true>(
            &spec,
            &Kappa0,
            ThresholdSchedule::single(1e6),
            &mut stats,
        );
        let rejected = rejected_subsets(&table, spec.n());
        assert!(rejected > 0);
    }

    #[test]
    fn reused_dirty_table_is_bit_identical_to_fresh() {
        let dirty_spec = chain_spec(8, 5000.0, 0.9);
        let spec = chain_spec(8, 100.0, 0.01);
        let schedule = ThresholdSchedule::new(1.0, 100.0, 10);
        let options = DriveOptions::serial();

        // Dirty the table with a different query's DP rows, then reuse it
        // through a schedule that forces escalation re-passes.
        let mut table: AosTable = {
            let mut stats = NoStats;
            optimize_join_threshold_into_with::<AosTable, _, _, true>(
                &dirty_spec,
                &Kappa0,
                ThresholdSchedule::default(),
                options,
                &mut stats,
            )
            .0
        };
        let mut stats = NoStats;
        let reused = optimize_join_threshold_reusing_with::<AosTable, _, _, true>(
            &mut table, &spec, &Kappa0, schedule, options, &mut stats,
        );

        let mut stats = NoStats;
        let (fresh_table, fresh) = optimize_join_threshold_into_with::<AosTable, _, _, true>(
            &spec, &Kappa0, schedule, options, &mut stats,
        );

        assert!(reused.passes > 1, "schedule should force escalation");
        assert_eq!(reused.passes, fresh.passes);
        assert_eq!(reused.final_cap.to_bits(), fresh.final_cap.to_bits());
        assert_eq!(reused.optimized.cost.to_bits(), fresh.optimized.cost.to_bits());
        assert_eq!(reused.optimized.plan.canonical(), fresh.optimized.plan.canonical());
        for bits in 1u32..(1u32 << spec.n()) {
            let s = RelSet::from_bits(bits);
            assert_eq!(table.card(s).to_bits(), fresh_table.card(s).to_bits(), "card {bits:#b}");
            assert_eq!(table.cost(s).to_bits(), fresh_table.cost(s).to_bits(), "cost {bits:#b}");
            assert_eq!(table.best_lhs(s), fresh_table.best_lhs(s), "best_lhs {bits:#b}");
        }
    }

    #[test]
    fn reusing_rejects_mismatched_table() {
        let spec = chain_spec(5, 100.0, 0.1);
        let mut table = AosTable::with_rels(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut stats = NoStats;
            optimize_join_threshold_reusing_with::<AosTable, _, _, true>(
                &mut table,
                &spec,
                &Kappa0,
                ThresholdSchedule::default(),
                DriveOptions::serial(),
                &mut stats,
            )
        }));
        assert!(result.is_err(), "size-mismatched table must be rejected");
    }

    #[test]
    fn works_with_dnl_model() {
        let spec = chain_spec(10, 100.0, 0.01);
        let unbounded = optimize_join(&spec, &DiskNestedLoops::default()).unwrap();
        let out = optimize_join_threshold(
            &spec,
            &DiskNestedLoops::default(),
            ThresholdSchedule::new(1e5, 1e9, 3),
        )
        .unwrap();
        assert_eq!(out.optimized.cost, unbounded.cost);
    }
}
