//! Join-order optimization (paper Section 5).
//!
//! > Join-order optimization is essentially the same as Cartesian product
//! > optimization, except that intermediate-result cardinalities are
//! > computed differently.
//!
//! The enumeration machinery (`find_best_split`, the integer-order driver)
//! is shared verbatim with [`crate::cartesian`]; only `compute_properties`
//! changes, implementing the two recurrences of Sections 5.2–5.3:
//!
//! * **cardinality**: `card(S) = card(U)·card(V)·Π_fan(S)` with
//!   `U = {min S}`, `V = S − U`  (equation (11));
//! * **fan product**: `Π_fan(S) = Π_fan(U ∪ W)·Π_fan(U ∪ Z)` where
//!   `{W, Z}` is any split of `V`; we use `W = {min V}`  (equation (10)).
//!
//! Doubleton sets seed the fan column with the selectivity of the
//! connecting predicate, or 1 when there is none (Section 5.4). The result
//! is that folding arbitrary join-graph selectivities into every one of
//! the `2^n` cardinalities costs exactly three floating multiplies per
//! subset, regardless of graph topology — and `find_best_split` needs no
//! changes at all, so plans with Cartesian products are chosen whenever
//! they are optimal.

use crate::bitset::RelSet;
use crate::cartesian::Optimized;
use crate::conv::RowEngine;
use crate::cost::CostModel;
use crate::kernel::ResolvedKernel;
use crate::plan::Plan;
use crate::spec::{JoinSpec, SpecError};
use crate::split::{drive, drive_parallel, init_singleton, DriveOptions};
use crate::stats::{NoStats, Stats};
use crate::table::{
    AosTable, HotColdTable, LayoutChoice, SoaTable, SyncTableView, TableLayout, WaveTableLayout,
    MAX_TABLE_RELS,
};

/// `compute_properties` for joins: fan recurrence + cardinality recurrence
/// (paper Section 5.4). Exactly three floating-point multiplications.
#[inline]
pub(crate) fn join_properties<L: TableLayout, M: CostModel>(
    table: &mut L,
    model: &M,
    spec: &JoinSpec,
    s: RelSet,
) {
    // U = {min S} = δ_S(1) = S & −S (Section 5.4).
    let u = s.lowest_singleton();
    let v = s - u;
    let pi_fan = if v.is_singleton() {
        // Doubleton: seed from the predicate connecting the two relations
        // (or 1 if there is none).
        spec.selectivity(u.min_rel().unwrap(), v.min_rel().unwrap())
    } else {
        // Π_fan(S) = Π_fan(U∪W) · Π_fan(U∪Z); both arguments are smaller
        // sets whose rows are already filled (integer processing order).
        let w = v.lowest_singleton();
        let z = v - w;
        table.pi_fan(u | w) * table.pi_fan(u | z)
    };
    table.set_pi_fan(s, pi_fan);
    let card = table.card(u) * table.card(v) * pi_fan;
    table.set_card(s, card);
    if M::HAS_AUX {
        table.set_aux(s, model.aux(card));
    }
}

/// Run the join optimizer with full control of table layout, statistics,
/// cost cap and pruning, returning the filled table. Most callers want
/// [`optimize_join`].
///
/// # Panics
/// Panics if `spec.n() > MAX_TABLE_RELS`.
pub fn optimize_join_into<L, M, St, const PRUNE: bool>(
    spec: &JoinSpec,
    model: &M,
    cap: f32,
    stats: &mut St,
) -> L
where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    optimize_join_into_kernel::<L, M, St, PRUNE>(spec, model, cap, ResolvedKernel::Scalar, stats)
}

/// Serial join optimization with an explicit, already-resolved split
/// kernel — the common body behind [`optimize_join_into`] (scalar) and
/// the serial arm of [`optimize_join_into_with`] (whatever
/// [`DriveOptions::kernel`] resolves to).
pub(crate) fn optimize_join_into_kernel<L, M, St, const PRUNE: bool>(
    spec: &JoinSpec,
    model: &M,
    cap: f32,
    kernel: ResolvedKernel,
    stats: &mut St,
) -> L
where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    let n = spec.n();
    assert!(n <= MAX_TABLE_RELS, "unsupported relation count {n}");
    let mut table = L::with_rels(n);
    for rel in 0..n {
        init_singleton(&mut table, model, rel, spec.card(rel));
    }
    drive::<L, M, St, _, PRUNE>(
        &mut table,
        model,
        n,
        cap,
        RowEngine::with_kernel(kernel),
        stats,
        |t, m, s| join_properties(t, m, spec, s),
    );
    table
}

/// Fill an **existing** table for `spec` in place — the allocation-free
/// core of both [`optimize_join_into_with`] and the table-reusing
/// service path ([`crate::threshold::optimize_join_threshold_reusing_with`]).
///
/// The table is *not* cleared first, and doesn't need to be: singleton
/// rows are re-initialized here, and every non-singleton row is fully
/// written (`compute_properties` + the split finish) before any superset
/// reads it — the same subset-before-superset dependency order that
/// makes the wave driver sound. Row 0 (the empty set) is never read.
/// Stale `f32`/`f64` bit patterns from a previous optimization are
/// ordinary values, so a recycled table produces bit-identical results
/// to a freshly allocated one (pinned by a dirty-table regression test
/// in [`crate::threshold`]).
///
/// # Panics
/// Panics if `table.rels() != spec.n()`.
pub(crate) fn fill_join_table_with<L, M, St, const PRUNE: bool>(
    table: &mut L,
    spec: &JoinSpec,
    model: &M,
    cap: f32,
    options: DriveOptions,
    stats: &mut St,
) where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
{
    let n = spec.n();
    assert_eq!(table.rels(), n, "table allocated for a different relation count");
    for rel in 0..n {
        init_singleton(table, model, rel, spec.card(rel));
    }
    if options.effective_parallelism() < 2 {
        drive::<L, M, St, _, PRUNE>(
            table,
            model,
            n,
            cap,
            RowEngine::resolve(options, model, n),
            stats,
            |t, m, s| join_properties(t, m, spec, s),
        );
    } else {
        drive_parallel::<L, M, St, _, PRUNE>(
            table,
            model,
            n,
            cap,
            options,
            stats,
            |t: &mut SyncTableView<L>, m, s| join_properties(t, m, spec, s),
        );
    }
}

/// [`optimize_join_into`] with an explicit execution policy: when
/// `options` resolves to two or more workers, the rank-wave parallel
/// driver fills the table; otherwise this is exactly the serial path.
/// Both produce bit-identical tables (see [`crate::split`]).
///
/// # Panics
/// Panics if `spec.n() > MAX_TABLE_RELS`.
pub fn optimize_join_into_with<L, M, St, const PRUNE: bool>(
    spec: &JoinSpec,
    model: &M,
    cap: f32,
    options: DriveOptions,
    stats: &mut St,
) -> L
where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
{
    let n = spec.n();
    assert!(n <= MAX_TABLE_RELS, "unsupported relation count {n}");
    let mut table = L::with_rels(n);
    fill_join_table_with::<L, M, St, PRUNE>(&mut table, spec, model, cap, options, stats);
    table
}

/// Optimize the join order for `spec` under `model`, searching the complete
/// space of bushy plans including Cartesian products.
///
/// Uses the paper's defaults: array-of-structs table, nested-`if` pruning
/// on, no plan-cost threshold, and the default [`DriveOptions`] execution
/// policy. For thresholded optimization see [`crate::threshold`].
///
/// # Errors
/// Returns [`SpecError::TooManyRels`] when the DP table would be too large.
pub fn optimize_join<M: CostModel + Sync>(
    spec: &JoinSpec,
    model: &M,
) -> Result<Optimized, SpecError> {
    optimize_join_with(spec, model, DriveOptions::default())
}

/// [`optimize_join`] with an explicit execution policy (worker-thread
/// count for the rank-wave parallel driver; `1` = serial) and table
/// layout ([`DriveOptions::layout`] picks the monomorphization). Every
/// layout/driver combination produces bit-identical results.
///
/// # Errors
/// Returns [`SpecError::TooManyRels`] when the DP table would be too large.
pub fn optimize_join_with<M: CostModel + Sync>(
    spec: &JoinSpec,
    model: &M,
    options: DriveOptions,
) -> Result<Optimized, SpecError> {
    let n = spec.n();
    if n > MAX_TABLE_RELS {
        return Err(SpecError::TooManyRels(n));
    }
    fn run<L, M>(spec: &JoinSpec, model: &M, options: DriveOptions) -> Optimized
    where
        L: WaveTableLayout + Send,
        M: CostModel + Sync,
    {
        let mut stats = NoStats;
        let table: L = optimize_join_into_with::<L, M, NoStats, true>(
            spec,
            model,
            f32::INFINITY,
            options,
            &mut stats,
        );
        let full = spec.all_rels();
        let cost = table.cost(full);
        // A spec whose every join order overflows the f32 cost scale
        // leaves the table without a ranked split: `inf < inf` never
        // updates a row, so `best_lhs` stays empty and extraction would
        // panic. All plans cost the same infinity then, so degrade to
        // the canonical left-deep order instead of crashing the caller.
        let plan = if cost.is_finite() || full.is_singleton() {
            Plan::extract(&table, full)
        } else {
            (1..spec.n()).fold(Plan::scan(0), |acc, r| Plan::join(acc, Plan::scan(r)))
        };
        Optimized { plan, cost, card: table.card(full) }
    }
    Ok(match options.layout {
        LayoutChoice::Aos => run::<AosTable, M>(spec, model, options),
        LayoutChoice::Soa => run::<SoaTable, M>(spec, model, options),
        LayoutChoice::HotCold => run::<HotColdTable, M>(spec, model, options),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DiskNestedLoops, Kappa0, SmDnl, SortMerge};

    /// Regression: cardinalities big enough that every plan costs
    /// `f32::INFINITY` used to panic in plan extraction (no row ever
    /// beat the `inf` initializer, so no split was recorded). The
    /// optimizer must return a complete (left-deep) plan instead.
    #[test]
    fn all_overflowing_costs_yield_a_plan_instead_of_panicking() {
        let spec =
            JoinSpec::new(&[1e30, 1e30, 1e30, 1e30], &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)])
                .unwrap();
        let opt = optimize_join(&spec, &Kappa0).unwrap();
        assert!(opt.cost.is_infinite(), "{}", opt.cost);
        assert_eq!(opt.plan.rel_set(), spec.all_rels(), "plan must still cover every relation");
    }
    use crate::stats::Counters;
    use crate::table::SoaTable;

    /// Figure 3's join graph: A,B,C,D with predicates AB, AC, BC, AD.
    fn fig3_spec() -> JoinSpec {
        JoinSpec::new(
            &[10.0, 20.0, 30.0, 40.0],
            &[(0, 1, 0.1), (0, 2, 0.2), (1, 2, 0.3), (0, 3, 0.4)],
        )
        .unwrap()
    }

    /// Exhaustive reference: try all splits recursively, computing
    /// cardinalities by the closed form.
    fn brute_force<M: CostModel>(spec: &JoinSpec, model: &M, s: RelSet) -> f32 {
        if s.is_singleton() {
            return 0.0;
        }
        let out = spec.join_cardinality(s);
        let mut best = f32::INFINITY;
        for lhs in s.proper_subsets() {
            let rhs = s - lhs;
            let c = brute_force(spec, model, lhs)
                + brute_force(spec, model, rhs)
                + model.kappa(out, spec.join_cardinality(lhs), spec.join_cardinality(rhs));
            if c < best {
                best = c;
            }
        }
        best
    }

    #[test]
    fn fan_column_matches_reference() {
        let spec = fig3_spec();
        let mut stats = NoStats;
        let t: AosTable =
            optimize_join_into::<_, _, _, true>(&spec, &Kappa0, f32::INFINITY, &mut stats);
        for bits in 1u32..(1 << spec.n()) {
            let s = RelSet::from_bits(bits);
            if s.is_singleton() {
                continue;
            }
            let expect = spec.pi_fan(s);
            let got = t.pi_fan(s);
            assert!((got - expect).abs() < 1e-12, "Π_fan({s:?}) = {got}, want {expect}");
        }
    }

    #[test]
    fn cardinalities_match_induced_subgraph_closed_form() {
        let spec = fig3_spec();
        let mut stats = NoStats;
        let t: AosTable =
            optimize_join_into::<_, _, _, true>(&spec, &Kappa0, f32::INFINITY, &mut stats);
        for bits in 1u32..(1 << spec.n()) {
            let s = RelSet::from_bits(bits);
            let expect = spec.join_cardinality(s);
            let got = t.card(s);
            let tol = expect.abs() * 1e-12 + 1e-12;
            assert!((got - expect).abs() <= tol, "card({s:?}) = {got}, want {expect}");
        }
    }

    #[test]
    fn matches_brute_force_on_various_graphs() {
        let specs = vec![
            fig3_spec(),
            // Chain R0–R1–R2–R3–R4.
            JoinSpec::new(
                &[100.0, 50.0, 200.0, 10.0, 70.0],
                &[(0, 1, 0.01), (1, 2, 0.05), (2, 3, 0.2), (3, 4, 0.1)],
            )
            .unwrap(),
            // Star with hub R0.
            JoinSpec::new(
                &[1000.0, 10.0, 20.0, 30.0, 40.0],
                &[(0, 1, 0.001), (0, 2, 0.002), (0, 3, 0.003), (0, 4, 0.004)],
            )
            .unwrap(),
            // Clique of 5.
            JoinSpec::new(
                &[10.0, 20.0, 30.0, 40.0, 50.0],
                &[
                    (0, 1, 0.5),
                    (0, 2, 0.4),
                    (0, 3, 0.3),
                    (0, 4, 0.2),
                    (1, 2, 0.1),
                    (1, 3, 0.2),
                    (1, 4, 0.3),
                    (2, 3, 0.4),
                    (2, 4, 0.5),
                    (3, 4, 0.6),
                ],
            )
            .unwrap(),
            // Disconnected: two components forcing a Cartesian product.
            JoinSpec::new(&[10.0, 20.0, 30.0, 40.0], &[(0, 1, 0.1), (2, 3, 0.2)]).unwrap(),
        ];
        for spec in &specs {
            check_against_brute_force(spec, &Kappa0);
            check_against_brute_force(spec, &SortMerge);
            check_against_brute_force(spec, &DiskNestedLoops::default());
            check_against_brute_force(spec, &SmDnl::default());
        }
    }

    fn check_against_brute_force<M: CostModel + Sync>(spec: &JoinSpec, model: &M) {
        let opt = optimize_join(spec, model).unwrap();
        let bf = brute_force(spec, model, spec.all_rels());
        let tol = bf.abs() * 1e-4 + 1e-4;
        assert!(
            (opt.cost - bf).abs() <= tol,
            "{}: optimizer {} vs brute force {}",
            model.name(),
            opt.cost,
            bf
        );
        let (_, recost) = opt.plan.cost(spec, model);
        let tol = opt.cost.abs() * 1e-4 + 1e-4;
        assert!((recost - opt.cost).abs() <= tol, "plan recost {recost} vs table {}", opt.cost);
    }

    /// A star query where the optimal plan contains a Cartesian product of
    /// two tiny satellites (the classic [OL90] observation). The optimizer
    /// must find it because it never excludes products a priori.
    #[test]
    fn optimal_plan_may_contain_cartesian_product() {
        // Hub R0 is huge; the satellites are small. Producting the two
        // satellites first costs 100 and shrinks the hub join to 100 rows
        // (total 200), whereas any hub-first plan materializes a 10^4-row
        // intermediate (total > 10^4) under κ0.
        let spec = JoinSpec::new(
            &[1_000_000.0, 10.0, 10.0],
            &[(0, 1, 1e-3), (0, 2, 1e-3)],
        )
        .unwrap();
        let opt = optimize_join(&spec, &Kappa0).unwrap();
        assert!(
            opt.plan.contains_cartesian_product(&spec),
            "expected a Cartesian product in {}",
            opt.plan
        );
        // And it must still be the brute-force optimum.
        let bf = brute_force(&spec, &Kappa0, spec.all_rels());
        assert!((opt.cost - bf).abs() <= bf.abs() * 1e-5 + 1e-5);
    }

    #[test]
    fn cartesian_spec_reduces_to_product_optimizer() {
        let cards = [10.0, 20.0, 30.0, 40.0, 50.0];
        let spec = JoinSpec::cartesian(&cards).unwrap();
        let via_join = optimize_join(&spec, &Kappa0).unwrap();
        let via_prod = crate::cartesian::optimize_products(&cards, &Kappa0).unwrap();
        assert_eq!(via_join.cost, via_prod.cost);
        assert_eq!(via_join.card, via_prod.card);
    }

    #[test]
    fn layouts_agree_on_joins() {
        let spec = fig3_spec();
        let mut s1 = NoStats;
        let mut s2 = NoStats;
        let aos: AosTable =
            optimize_join_into::<_, _, _, true>(&spec, &SortMerge, f32::INFINITY, &mut s1);
        let soa: SoaTable =
            optimize_join_into::<_, _, _, true>(&spec, &SortMerge, f32::INFINITY, &mut s2);
        for bits in 1u32..(1 << spec.n()) {
            let s = RelSet::from_bits(bits);
            assert_eq!(aos.cost(s), soa.cost(s));
            assert_eq!(aos.card(s), soa.card(s));
            assert_eq!(aos.pi_fan(s), soa.pi_fan(s));
        }
    }

    #[test]
    fn single_relation_join() {
        let spec = JoinSpec::cartesian(&[99.0]).unwrap();
        let opt = optimize_join(&spec, &Kappa0).unwrap();
        assert_eq!(opt.plan, Plan::scan(0));
        assert_eq!(opt.cost, 0.0);
    }

    /// Selectivities affect only `compute_properties`, never the split
    /// enumeration: loop-iteration counts must be identical for any two
    /// graphs of the same size (unpruned).
    #[test]
    fn enumeration_is_topology_independent() {
        let chain =
            JoinSpec::new(&[10.0; 6], &[(0, 1, 0.1), (1, 2, 0.1), (2, 3, 0.1), (3, 4, 0.1), (4, 5, 0.1)])
                .unwrap();
        let cart = JoinSpec::cartesian(&[10.0; 6]).unwrap();
        let mut c1 = Counters::default();
        let mut c2 = Counters::default();
        let _: AosTable = optimize_join_into::<_, _, _, false>(&chain, &Kappa0, f32::INFINITY, &mut c1);
        let _: AosTable = optimize_join_into::<_, _, _, false>(&cart, &Kappa0, f32::INFINITY, &mut c2);
        assert_eq!(c1.loop_iters, c2.loop_iters);
        assert_eq!(c1.subsets, c2.subsets);
    }
}
