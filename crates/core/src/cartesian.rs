//! Algorithm *blitzsplit* for Cartesian product optimization (paper
//! Section 3, implemented per Section 4).
//!
//! Given only base-relation cardinalities, find the cheapest bushy tree of
//! dyadic `×` operators computing their product. The dynamic-programming
//! table has a row per nonempty subset; `compute_properties` obtains each
//! subset's cardinality by multiplying the cardinalities of an arbitrary
//! split (we use `{min S}` and the rest), and `find_best_split` examines
//! all `2^|S|−2` splits.
//!
//! Although "that result is interesting not because Cartesian product
//! optimization is useful" (Section 1), this optimizer is the foundation:
//! the join optimizer of [`crate::join`] differs *only* in how
//! intermediate-result cardinalities are computed.

use crate::bitset::RelSet;
use crate::conv::RowEngine;
use crate::cost::CostModel;
use crate::kernel::ResolvedKernel;
use crate::plan::Plan;
use crate::spec::{JoinSpec, SpecError};
use crate::split::{drive, drive_parallel, init_singleton, DriveOptions};
use crate::stats::{NoStats, Stats};
use crate::table::{
    AosTable, HotColdTable, LayoutChoice, SoaTable, SyncTableView, TableLayout, WaveTableLayout,
    MAX_TABLE_RELS,
};

/// Result of a successful optimization.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimal plan tree.
    pub plan: Plan,
    /// Cost of the optimal plan (`f32`, as stored in the table).
    pub cost: f32,
    /// Estimated cardinality of the final result.
    pub card: f64,
}

/// `compute_properties` for pure products (paper Figure 1): split `S`
/// arbitrarily and multiply the sub-cardinalities.
#[inline]
fn product_properties<L: TableLayout, M: CostModel>(table: &mut L, model: &M, s: RelSet) {
    let u = s.lowest_singleton();
    let v = s - u;
    let card = table.card(u) * table.card(v);
    table.set_card(s, card);
    if M::HAS_AUX {
        table.set_aux(s, model.aux(card));
    }
}

/// Run blitzsplit over `cards` with full control of the table layout,
/// statistics sink, cost cap and pruning switch, returning the filled
/// table. Most callers want [`optimize_products`] instead.
///
/// # Panics
/// Panics if `cards` is empty or longer than [`MAX_TABLE_RELS`].
pub fn optimize_products_into<L, M, St, const PRUNE: bool>(
    cards: &[f64],
    model: &M,
    cap: f32,
    stats: &mut St,
) -> L
where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    optimize_products_into_kernel::<L, M, St, PRUNE>(
        cards,
        model,
        cap,
        ResolvedKernel::Scalar,
        stats,
    )
}

/// Serial product optimization with an explicit, already-resolved split
/// kernel — the common body behind [`optimize_products_into`] (scalar)
/// and the serial arm of [`optimize_products_into_with`] (whatever
/// [`DriveOptions::kernel`] resolves to).
pub(crate) fn optimize_products_into_kernel<L, M, St, const PRUNE: bool>(
    cards: &[f64],
    model: &M,
    cap: f32,
    kernel: ResolvedKernel,
    stats: &mut St,
) -> L
where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    let n = cards.len();
    assert!((1..=MAX_TABLE_RELS).contains(&n), "unsupported relation count {n}");
    let mut table = L::with_rels(n);
    for (rel, &card) in cards.iter().enumerate() {
        init_singleton(&mut table, model, rel, card);
    }
    drive::<L, M, St, _, PRUNE>(
        &mut table,
        model,
        n,
        cap,
        RowEngine::with_kernel(kernel),
        stats,
        product_properties,
    );
    table
}

/// [`optimize_products_into`] with an explicit execution policy: when
/// `options` resolves to two or more workers, the rank-wave parallel
/// driver fills the table; otherwise this is exactly the serial path.
/// Both produce bit-identical tables (see [`crate::split`]).
///
/// # Panics
/// Panics if `cards` is empty or longer than [`MAX_TABLE_RELS`].
pub fn optimize_products_into_with<L, M, St, const PRUNE: bool>(
    cards: &[f64],
    model: &M,
    cap: f32,
    options: DriveOptions,
    stats: &mut St,
) -> L
where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
{
    let threads = options.effective_parallelism();
    if threads < 2 {
        let n = cards.len();
        assert!((1..=MAX_TABLE_RELS).contains(&n), "unsupported relation count {n}");
        let mut table = L::with_rels(n);
        for (rel, &card) in cards.iter().enumerate() {
            init_singleton(&mut table, model, rel, card);
        }
        drive::<L, M, St, _, PRUNE>(
            &mut table,
            model,
            n,
            cap,
            RowEngine::resolve(options, model, n),
            stats,
            product_properties,
        );
        return table;
    }
    let n = cards.len();
    assert!((1..=MAX_TABLE_RELS).contains(&n), "unsupported relation count {n}");
    let mut table = L::with_rels(n);
    for (rel, &card) in cards.iter().enumerate() {
        init_singleton(&mut table, model, rel, card);
    }
    drive_parallel::<L, M, St, _, PRUNE>(
        &mut table,
        model,
        n,
        cap,
        options,
        stats,
        product_properties::<SyncTableView<L>, M>,
    );
    table
}

/// Optimize the Cartesian product of the given relations under `model`,
/// returning the optimal bushy plan.
///
/// Uses the paper's defaults: array-of-structs table, nested-`if` pruning
/// on, no plan-cost threshold (costs only reject on `f32` overflow), and
/// the default [`DriveOptions`] execution policy.
///
/// # Errors
/// Returns [`SpecError`] if `cards` is empty, oversized, or contains a
/// nonpositive/non-finite cardinality. Returns `Err(SpecError::Empty)`
/// never for single relations — a one-relation "product" is just a scan.
pub fn optimize_products<M: CostModel + Sync>(
    cards: &[f64],
    model: &M,
) -> Result<Optimized, SpecError> {
    optimize_products_with(cards, model, DriveOptions::default())
}

/// [`optimize_products`] with an explicit execution policy (worker-thread
/// count for the rank-wave parallel driver; `1` = serial) and table
/// layout ([`DriveOptions::layout`] picks the monomorphization).
///
/// # Errors
/// Returns [`SpecError`] if `cards` is empty, oversized, or contains a
/// nonpositive/non-finite cardinality.
pub fn optimize_products_with<M: CostModel + Sync>(
    cards: &[f64],
    model: &M,
    options: DriveOptions,
) -> Result<Optimized, SpecError> {
    // Validate through JoinSpec for uniform error reporting.
    let spec = JoinSpec::cartesian(cards)?;
    let n = spec.n();
    if n > MAX_TABLE_RELS {
        return Err(SpecError::TooManyRels(n));
    }
    fn run<L, M>(cards: &[f64], model: &M, options: DriveOptions) -> Optimized
    where
        L: WaveTableLayout + Send,
        M: CostModel + Sync,
    {
        let mut stats = NoStats;
        let table: L = optimize_products_into_with::<L, M, NoStats, true>(
            cards,
            model,
            f32::INFINITY,
            options,
            &mut stats,
        );
        let full = RelSet::full(cards.len());
        Optimized {
            plan: Plan::extract(&table, full),
            cost: table.cost(full),
            card: table.card(full),
        }
    }
    Ok(match options.layout {
        LayoutChoice::Aos => run::<AosTable, M>(cards, model, options),
        LayoutChoice::Soa => run::<SoaTable, M>(cards, model, options),
        LayoutChoice::HotCold => run::<HotColdTable, M>(cards, model, options),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DiskNestedLoops, Kappa0, SortMerge};
    use crate::stats::Counters;
    use crate::table::SoaTable;

    /// Exhaustive reference optimizer: recursively try all splits.
    fn brute_force<M: CostModel>(cards: &[f64], model: &M, s: RelSet) -> (f64, f32) {
        if s.is_singleton() {
            return (cards[s.min_rel().unwrap()], 0.0);
        }
        let mut best = f32::INFINITY;
        let mut out = 0.0;
        for lhs in s.proper_subsets() {
            let rhs = s - lhs;
            let (lc, lcost) = brute_force(cards, model, lhs);
            let (rc, rcost) = brute_force(cards, model, rhs);
            out = lc * rc;
            let c = lcost + rcost + model.kappa(out, lc, rc);
            if c < best {
                best = c;
            }
        }
        (out, best)
    }

    /// Paper Table 1: cards 10/20/30/40 under κ0 → cost 241 000, plan
    /// (A×D)×(B×C) up to commutativity.
    #[test]
    fn table1_reproduction() {
        let cards = [10.0, 20.0, 30.0, 40.0];
        let opt = optimize_products(&cards, &Kappa0).unwrap();
        assert_eq!(opt.card, 240_000.0);
        assert_eq!(opt.cost, 241_000.0);
        let expect = Plan::join(
            Plan::join(Plan::scan(0), Plan::scan(3)),
            Plan::join(Plan::scan(1), Plan::scan(2)),
        );
        assert_eq!(opt.plan.canonical(), expect.canonical());
    }

    /// Every intermediate row of Table 1 must match the paper exactly.
    #[test]
    fn table1_intermediate_rows() {
        let cards = [10.0, 20.0, 30.0, 40.0];
        let mut stats = NoStats;
        let t: AosTable = optimize_products_into::<AosTable, _, _, true>(
            &cards,
            &Kappa0,
            f32::INFINITY,
            &mut stats,
        );
        // (set bits, card, cost) triples straight from Table 1.
        // A=R0, B=R1, C=R2, D=R3.
        let rows: &[(u32, f64, f32)] = &[
            (0b0001, 10.0, 0.0),
            (0b0010, 20.0, 0.0),
            (0b0100, 30.0, 0.0),
            (0b1000, 40.0, 0.0),
            (0b0011, 200.0, 200.0),
            (0b0101, 300.0, 300.0),
            (0b1001, 400.0, 400.0),
            (0b0110, 600.0, 600.0),
            (0b1010, 800.0, 800.0),
            (0b1100, 1200.0, 1200.0),
            (0b0111, 6000.0, 6200.0),
            (0b1011, 8000.0, 8200.0),
            (0b1101, 12000.0, 12300.0),
            (0b1110, 24000.0, 24600.0),
            (0b1111, 240_000.0, 241_000.0),
        ];
        for &(bits, card, cost) in rows {
            let s = RelSet::from_bits(bits);
            assert_eq!(t.card(s), card, "card of {s:?}");
            assert_eq!(t.cost(s), cost, "cost of {s:?}");
        }
        // Best LHS of the full set is {A,D} (or its complement {B,C}).
        let lhs = t.best_lhs(RelSet::full(4));
        assert!(lhs.bits() == 0b1001 || lhs.bits() == 0b0110, "best lhs {lhs:?}");
    }

    #[test]
    fn matches_brute_force_small_n() {
        let cardsets: &[&[f64]] = &[
            &[5.0],
            &[7.0, 3.0],
            &[2.0, 9.0, 4.0],
            &[10.0, 20.0, 30.0, 40.0],
            &[1.0, 1.0, 1.0, 1.0, 1.0],
            &[3.0, 1e4, 2.0, 500.0, 80.0, 7.0],
        ];
        for cards in cardsets {
            for_all_models(cards);
        }
    }

    fn for_all_models(cards: &[f64]) {
        check_model(cards, &Kappa0);
        check_model(cards, &SortMerge);
        check_model(cards, &DiskNestedLoops::default());
    }

    fn check_model<M: CostModel + Sync>(cards: &[f64], model: &M) {
        let opt = optimize_products(cards, model).unwrap();
        if cards.len() == 1 {
            assert_eq!(opt.plan, Plan::scan(0));
            return;
        }
        let (_, bf) = brute_force(cards, model, RelSet::full(cards.len()));
        let tol = bf.abs() * 1e-5 + 1e-5;
        assert!(
            (opt.cost - bf).abs() <= tol,
            "{}: blitzsplit {} vs brute force {} on {cards:?}",
            model.name(),
            opt.cost,
            bf
        );
        // The extracted plan's recomputed cost must agree with the table.
        let spec = JoinSpec::cartesian(cards).unwrap();
        let (_, recost) = opt.plan.cost(&spec, model);
        let tol = opt.cost.abs() * 1e-5 + 1e-5;
        assert!((recost - opt.cost).abs() <= tol, "plan recost {recost} vs table {}", opt.cost);
    }

    #[test]
    fn single_relation_is_a_scan() {
        let opt = optimize_products(&[42.0], &Kappa0).unwrap();
        assert_eq!(opt.plan, Plan::scan(0));
        assert_eq!(opt.cost, 0.0);
        assert_eq!(opt.card, 42.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(optimize_products(&[], &Kappa0).is_err());
        assert!(optimize_products(&[0.0], &Kappa0).is_err());
        assert!(optimize_products(&[f64::NAN, 2.0], &Kappa0).is_err());
    }

    #[test]
    fn layouts_agree() {
        let cards = [12.0, 7.0, 130.0, 2.0, 55.0, 9.0];
        let mut s1 = NoStats;
        let mut s2 = NoStats;
        let aos: AosTable =
            optimize_products_into::<_, _, _, true>(&cards, &Kappa0, f32::INFINITY, &mut s1);
        let soa: SoaTable =
            optimize_products_into::<_, _, _, true>(&cards, &Kappa0, f32::INFINITY, &mut s2);
        for bits in 1u32..(1 << cards.len()) {
            let s = RelSet::from_bits(bits);
            assert_eq!(aos.card(s), soa.card(s));
            assert_eq!(aos.cost(s), soa.cost(s));
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let cards = [12.0, 7.0, 130.0, 2.0, 55.0, 9.0, 31.0];
        let mut s1 = NoStats;
        let mut s2 = NoStats;
        let a: AosTable = optimize_products_into::<_, _, _, true>(
            &cards,
            &DiskNestedLoops::default(),
            f32::INFINITY,
            &mut s1,
        );
        let b: AosTable = optimize_products_into::<_, _, _, false>(
            &cards,
            &DiskNestedLoops::default(),
            f32::INFINITY,
            &mut s2,
        );
        for bits in 1u32..(1 << cards.len()) {
            let s = RelSet::from_bits(bits);
            assert_eq!(a.cost(s), b.cost(s), "cost of {s:?}");
        }
    }

    /// The counter totals must match the Section 3.3 analysis exactly:
    /// Σ_{m=2}^{n} C(n,m)·(2^m − 2) loop iterations and 2^n − n − 1
    /// non-singleton subsets.
    #[test]
    fn counter_totals_match_analysis() {
        fn binom(n: u64, k: u64) -> u64 {
            (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1))
        }
        for n in 2..=10usize {
            let cards: Vec<f64> = (0..n).map(|i| 10.0 + i as f64).collect();
            let mut c = Counters::default();
            let _: AosTable = optimize_products_into::<_, _, _, false>(
                &cards,
                &Kappa0,
                f32::INFINITY,
                &mut c,
            );
            let expect_loops: u64 =
                (2..=n as u64).map(|m| binom(n as u64, m) * ((1u64 << m) - 2)).sum();
            let expect_subsets = (1u64 << n) - n as u64 - 1;
            assert_eq!(c.loop_iters, expect_loops, "n={n}");
            assert_eq!(c.subsets, expect_subsets, "n={n}");
            assert_eq!(c.kappa_ind_evals, expect_subsets, "n={n}");
            // Unpruned: κ'' evaluated on every loop iteration.
            assert_eq!(c.kappa_dep_evals, expect_loops, "n={n}");
            assert_eq!(c.passes, 1);
        }
    }

    /// With pruning, κ'' evaluations (for a model with HAS_DEP) are
    /// strictly fewer than loop iterations on any non-degenerate input.
    #[test]
    fn pruning_reduces_kappa_dep_evals() {
        let cards: Vec<f64> = (0..10).map(|i| 10.0 * (i + 1) as f64).collect();
        let mut c = Counters::default();
        let _: AosTable = optimize_products_into::<_, _, _, true>(
            &cards,
            &DiskNestedLoops::default(),
            f32::INFINITY,
            &mut c,
        );
        assert!(c.kappa_dep_evals < c.loop_iters);
        assert!(c.cond_hits <= c.kappa_dep_evals);
    }

    /// Gigantic cardinalities overflow `f32` costs; the optimizer must
    /// reject those plans and still terminate with cost `+∞` rather than
    /// returning garbage.
    #[test]
    fn overflow_yields_infinite_cost() {
        let cards = [1e30, 1e30, 1e30];
        let mut stats = NoStats;
        let t: AosTable =
            optimize_products_into::<_, _, _, true>(&cards, &Kappa0, f32::INFINITY, &mut stats);
        assert!(t.cost(RelSet::full(3)).is_infinite());
    }
}
