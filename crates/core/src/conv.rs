//! The layered-convolution driver — `DriverChoice::Conv`.
//!
//! The split-enumeration DP computes, for every non-singleton set `S`,
//!
//! ```text
//! cost[S] = κ'(S) + min over {L, R} partitioning S of
//!               cost[L] + cost[R] + κ''(S, L, R)
//! ```
//!
//! Viewed one popcount layer at a time (as the rank-wave parallel driver
//! already schedules it), the inner `min` over wave `k` is a (min,+)
//! **subset convolution** of the lower layers of the dense cost column
//! with itself: `(cost ⊛ cost)[S] = min_{L ⊂ S} cost[L] + cost[S − L]`
//! (DPconv's formulation of the join-ordering DP). Exact (min,+)
//! convolution over real-valued costs admits no known subexponential
//! evaluation, but the convolution view licenses an *orientation
//! halving* the split enumeration cannot see: `⊛` is commutative, so
//! when a candidate's cost is a symmetric function of `{L, R}` each
//! unordered partition needs evaluating **once**, not once per
//! orientation. This driver anchors every candidate on the lowest
//! relation of `S` — walking `L = {min S} ∪ sub` for `sub ⊆ S − {min S}`
//! — and thereby visits `2^(|S|−1) − 1` candidates per row instead of
//! the split walk's `2^|S| − 2`: half the `3^n` total, an asymptotic
//! constant no further micro-optimization of the split loop can reach.
//!
//! # Exactness boundary
//!
//! The halving is exact when the candidate cost assigns both
//! orientations of an unordered partition the same f32 bits. Each model
//! declares how it reaches that bar via
//! [`CostModel::CONV_SUPPORT`](crate::cost::ConvSupport):
//!
//! * **Native** (κ0): `κ'' ≡ 0`, so a candidate's cost is the single
//!   commutative addition `cost[L] + cost[R]` — exact with no help.
//! * **Canonical** (κ_sm, κ_dnl, min(κ_sm, κ_dnl)): `κ''` is nonzero,
//!   but every κ'' call site — the split walk, the batched re-judge and
//!   this driver's anchored walk — presents the operands in a
//!   *canonical order*: the operand containing `min S` is always `L`
//!   (the anchored walk satisfies this by construction, since its left
//!   operand always contains the anchor `{min S}`; the split walk swaps
//!   when its `lhs` lacks the lowest relation). Both orientations then
//!   execute the same float expression on identically ordered operands
//!   and round to the same bits, so the halving is exact by
//!   construction. The canonical-split reference — split enumeration
//!   with canonically ordered κ'' operands — is the common ground truth
//!   both drivers are bit-equal to; for the shipped models it is also
//!   bit-equal to the historical un-normalized split output, because
//!   their κ'' happen to be bitwise symmetric (IEEE `+`/`*`/`min`
//!   commute exactly — pinned by a cost-model unit test).
//! * **Fallback** (the default for models that declare nothing):
//!   `Conv`/`Auto` transparently degrade to the split driver via
//!   [`RowEngine::resolve`], and κ'' sees raw walk order.
//!
//! On a supported model the resulting **cost and cardinality columns are
//! bit-identical** to the split driver's: both drivers take the f32
//! minimum (strict `<`, first-wins) over the same multiset of candidate
//! values. The `best_lhs` column may differ in *representation* — the
//! split walk records whichever orientation of the winning partition has
//! the smaller integer bit pattern, the anchored walk always records the
//! orientation containing `min S` — but both denote the same unordered
//! partition, so extracted plans are equal up to commuting join inputs
//! (and compare equal after [`crate::plan::Plan::canonical`]). Only on a
//! genuine *cross-partition* tie (two different partitions at exactly
//! equal f32 cost) can the chosen partition itself differ between
//! drivers; each driver's own choice is deterministic — first minimum in
//! its documented walk order — which is what the driver-equivalence
//! suite pins.
//!
//! # Dispatch
//!
//! [`DriverChoice`] is the user-facing knob on [`crate::DriveOptions`]
//! (env `BLITZ_TEST_DRIVER`, CLI `--driver`, service config/wire
//! `driver=`): `Split` is the reference enumeration, `Conv` uses this
//! driver wherever the model supports it (falling back otherwise), and
//! `Auto` picks Conv only when the model supports it *and* the relation
//! count is at least the crossover — [`CONV_AUTO_MIN_RELS`] by default,
//! or a measured-on-this-host value when a calibration profile is in
//! force ([`crate::calibrate`], [`DriveOptions::conv_min_rels`]) —
//! below the crossover the split loop's smaller per-row constant wins
//! (see EXPERIMENTS.md). Resolution happens once per drive in
//! [`RowEngine::resolve`]; the row path dispatches on a `Copy` token.
//!
//! [`RowEngine`] also owns the per-wave scalar-vs-batched kernel
//! selection: rows of popcount `k` deposit `2^k − 2` (split) or
//! `2^(k−1) − 1` (conv) candidates, and a wave whose rows cannot fill
//! even one [`LANES`]-wide batch pays the batch-fill bookkeeping without
//! amortizing it, so waves below [`DEFAULT_SCALAR_WAVE_FLOOR`] run the
//! scalar cascade regardless of the requested kernel. Kernels are
//! bit-identical (tables, plans, counters — see [`crate::kernel`]), so
//! the floor is pure scheduling; it is ablated in the hotpath bench.

use crate::bitset::RelSet;
use crate::cost::{ConvSupport, CostModel};
#[cfg(target_arch = "aarch64")]
use crate::kernel::gather_mask_neon;
#[cfg(target_arch = "x86_64")]
use crate::kernel::{gather_mask_avx2, gather_mask_avx512};
use crate::kernel::{find_best_split_with, gather_mask_portable, ResolvedKernel, LANES, LANES_WIDE};
use crate::split::DriveOptions;
use crate::stats::Stats;
use crate::table::TableLayout;

/// Relation count at or above which `DriverChoice::Auto` prefers the
/// convolution driver on a supporting model. Below the crossover the
/// split loop's smaller per-row setup wins; the halving only pays once
/// the `O(3^n)` loop body dominates. Measured on the hotpath bench
/// host (see EXPERIMENTS.md): conv is at-or-ahead of the best split
/// configuration from `n = 6` on all four workload topologies, and
/// within noise at `n = 5`.
pub const CONV_AUTO_MIN_RELS: usize = 6;

/// Popcount below which [`RowEngine::run_row`] forces the scalar
/// cascade: rows of popcount `k < 4` deposit at most `2^3 − 2 = 6`
/// split candidates (conv: at most 7) — less than one [`LANES`]-wide
/// batch — so batching is pure fill overhead there. `0` disables the
/// floor (every row uses the requested kernel); the hotpath bench
/// ablates exactly that.
pub const DEFAULT_SCALAR_WAVE_FLOOR: u8 = 4;

/// Runtime name for the DP driver used to fill each table row,
/// selectable per [`crate::DriveOptions`] (env `BLITZ_TEST_DRIVER`, CLI
/// `--driver`, service config). On models where the convolution
/// reduction is exact ([`CostModel::CONV_SUPPORT`] of `Native` or
/// `Canonical`) the drivers are cost-bit-identical; elsewhere
/// `Conv`/`Auto` silently run `Split`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum DriverChoice {
    /// The Vance–Maier split enumeration of [`crate::split`]: every
    /// ordered split of every set. The reference, and the default.
    #[default]
    Split,
    /// The anchored layered-convolution driver of this module: each
    /// unordered partition once. Falls back to `Split` on models whose
    /// `κ''` makes the halving inexact.
    Conv,
    /// `Conv` when the model supports it and `n ≥` the measured
    /// crossover ([`CONV_AUTO_MIN_RELS`]); `Split` otherwise.
    Auto,
}

impl DriverChoice {
    /// All selectable drivers, for ablation sweeps.
    pub const ALL: [DriverChoice; 3] =
        [DriverChoice::Split, DriverChoice::Conv, DriverChoice::Auto];

    /// Stable lower-case name (`split` / `conv` / `auto`).
    pub fn name(self) -> &'static str {
        match self {
            DriverChoice::Split => "split",
            DriverChoice::Conv => "conv",
            DriverChoice::Auto => "auto",
        }
    }

    /// Inverse of [`name`](DriverChoice::name); `None` for unknown names.
    pub fn parse(s: &str) -> Option<DriverChoice> {
        match s {
            "split" => Some(DriverChoice::Split),
            "conv" => Some(DriverChoice::Conv),
            "auto" => Some(DriverChoice::Auto),
            _ => None,
        }
    }

    /// Resolve the user-facing choice against a model's capability, the
    /// problem size and the effective `Auto` crossover
    /// ([`DriveOptions::conv_min_rels`] — [`CONV_AUTO_MIN_RELS`] unless
    /// a calibration profile retuned it), once per drive. Never returns
    /// `Auto`; `Conv` on a [`ConvSupport::Fallback`] model degrades to
    /// `Split` (the documented transparent fallback), so requesting
    /// `Conv` is always safe.
    pub fn resolve(self, support: ConvSupport, n: usize, min_rels: usize) -> DriverChoice {
        match self {
            DriverChoice::Split => DriverChoice::Split,
            DriverChoice::Conv => {
                if support.allows_conv() {
                    DriverChoice::Conv
                } else {
                    DriverChoice::Split
                }
            }
            DriverChoice::Auto => {
                if support.allows_conv() && n >= min_rels {
                    DriverChoice::Conv
                } else {
                    DriverChoice::Split
                }
            }
        }
    }
}

impl std::fmt::Display for DriverChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-row execution policy, resolved once per drive: which DP
/// driver fills a row, with which kernel, and below which popcount the
/// scalar cascade stands in. A `Copy` token handed to every worker so
/// neither feature detection nor capability probing sits on the row
/// path.
#[derive(Copy, Clone, Debug)]
pub(crate) struct RowEngine {
    /// Resolved split kernel for rows at or above the floor.
    kernel: ResolvedKernel,
    /// Resolved driver — `Split` or `Conv`, never `Auto`.
    driver: DriverChoice,
    /// Popcount below which rows run the scalar cascade.
    scalar_wave_floor: u8,
}

impl RowEngine {
    /// Resolve a full [`DriveOptions`] policy against the model and
    /// problem size.
    pub(crate) fn resolve<M: CostModel>(options: DriveOptions, _model: &M, n: usize) -> RowEngine {
        RowEngine {
            kernel: options.kernel.resolve(),
            driver: options.driver.resolve(M::CONV_SUPPORT, n, options.conv_min_rels),
            scalar_wave_floor: options.scalar_wave_floor,
        }
    }

    /// An engine pinned to an explicit, already-resolved kernel: split
    /// driver, no scalar floor. The legacy serial entry points
    /// ([`crate::join::optimize_join_into_kernel`] and friends) route
    /// here so their enumeration — and therefore their `Counters` — is
    /// exactly the reference split walk under the requested kernel.
    pub(crate) fn with_kernel(kernel: ResolvedKernel) -> RowEngine {
        RowEngine { kernel, driver: DriverChoice::Split, scalar_wave_floor: 0 }
    }

    /// Fill the row for `s` with this policy. Same contract as
    /// [`crate::split::find_best_split`]: `card`/`aux` already filled,
    /// `cost` and `best_lhs` written here.
    #[inline]
    pub(crate) fn run_row<L, M, St, const PRUNE: bool>(
        self,
        table: &mut L,
        model: &M,
        s: RelSet,
        cap: f32,
        stats: &mut St,
    ) where
        L: TableLayout,
        M: CostModel,
        St: Stats,
    {
        // Per-wave kernel selection: a row's popcount is its wave, so
        // this one popcount test (s.len() is a single popcnt) applies
        // the wave floor identically under the serial integer-order
        // driver and the rank-wave parallel driver.
        let kernel = if s.len() < usize::from(self.scalar_wave_floor) {
            ResolvedKernel::Scalar
        } else {
            self.kernel
        };
        match self.driver {
            DriverChoice::Conv => {
                find_best_split_conv_with::<L, M, St, PRUNE>(table, model, s, cap, stats, kernel);
            }
            _ => {
                find_best_split_with::<L, M, St, PRUNE>(table, model, s, cap, stats, kernel);
            }
        }
    }
}

/// Kernel-dispatching form of [`find_best_split_conv`], mirroring
/// [`find_best_split_with`]: scalar reference for the `Scalar` kernel
/// and the unpruned ablation, batched/SIMD otherwise.
#[inline]
pub(crate) fn find_best_split_conv_with<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
    kernel: ResolvedKernel,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    if matches!(kernel, ResolvedKernel::Scalar) || !PRUNE {
        return find_best_split_conv::<L, M, St, PRUNE>(table, model, s, cap, stats);
    }
    find_best_split_conv_batched::<L, M, St, PRUNE>(table, model, s, cap, stats, kernel);
}

/// Anchored convolution form of [`crate::split::find_best_split`]:
/// identical contract
/// and identical κ' hoist / cascade / finish stages, but the candidate
/// walk covers each unordered partition of `s` exactly once by fixing
/// `anchor = {min s}` in the left operand and walking
/// `sub ⊆ s − anchor` in dilated-counting order (`sub` starts empty —
/// the first candidate is `anchor` itself — and the walk stops before
/// `sub` reaches `s − anchor`, which would leave an empty right side).
///
/// Tie-break determinism: the walk visits `lhs = anchor ∪ sub` in
/// strictly increasing bit-vector order of `sub` (dilated counting is
/// order-preserving), and the strict `<` below keeps the first minimum
/// — the minimum-cost partition whose *anchored orientation* has the
/// lowest bits. Like the split walk's tie-break, the choice depends
/// only on rows of strict subsets of `s`, so serial and rank-wave
/// parallel execution produce bit-identical tables.
#[inline]
pub(crate) fn find_best_split_conv<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    stats.subset();
    let out_card = table.card(s);

    // κ'(S) hoist + loop skip — verbatim from `find_best_split`.
    stats.kappa_ind();
    let kappa_ind = model.kappa_ind(out_card);
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(kappa_ind < cap) {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
        stats.loop_skipped();
        return;
    }

    let mut best = f32::INFINITY;
    let mut best_lhs = RelSet::EMPTY;

    let anchor = s.lowest_singleton();
    let rest = s - anchor;
    // `rest.subset_successor(RelSet::EMPTY)` is `rest & (0 − rest)` =
    // the lowest singleton of `rest`, so one successor walk covers
    // sub = ∅, δ_rest(1), δ_rest(2), … without a special first step.
    let mut sub = RelSet::EMPTY;
    loop {
        stats.loop_iter();
        let lhs = anchor | sub;
        let rhs = rest - sub;

        // One-candidate lookahead prefetch, exactly as in the split
        // walk: advisory only, gated on `L::PREFETCHES` so no-op
        // layouts pay nothing.
        let next_sub = rest.subset_successor(sub);
        if L::PREFETCHES && next_sub != rest {
            table.prefetch_cost(anchor | next_sub);
            table.prefetch_cost(rest - next_sub);
        }

        if PRUNE {
            // Nested-if cascade — verbatim from `find_best_split`.
            let lhs_cost = table.cost(lhs);
            if lhs_cost < best {
                let oprnd_cost = lhs_cost + table.cost(rhs);
                if oprnd_cost < best {
                    let dpnd_cost = if M::HAS_DEP {
                        stats.kappa_dep();
                        // The anchored walk is canonical by construction
                        // (`lhs ⊇ {min s}`), so passing `(lhs, rhs)`
                        // as-is IS the lowest-relation-first order the
                        // `Canonical` exactness argument requires — no
                        // swap test needed here, unlike the split walk's
                        // `kappa_dep_oriented`.
                        oprnd_cost
                            + model.kappa_dep(
                                out_card,
                                table.card(lhs),
                                table.card(rhs),
                                table.aux(lhs),
                                table.aux(rhs),
                            )
                    } else {
                        oprnd_cost
                    };
                    if dpnd_cost < best {
                        stats.cond_hit();
                        best = dpnd_cost;
                        best_lhs = lhs;
                    }
                }
            }
        } else {
            let oprnd_cost = table.cost(lhs) + table.cost(rhs);
            stats.kappa_dep();
            // Anchored ⇒ canonical operand order, as in the pruned arm.
            let dpnd_cost = oprnd_cost
                + model.kappa_dep(
                    out_card,
                    table.card(lhs),
                    table.card(rhs),
                    table.aux(lhs),
                    table.aux(rhs),
                );
            if dpnd_cost < best {
                stats.cond_hit();
                best = dpnd_cost;
                best_lhs = lhs;
            }
        }

        if next_sub == rest {
            break;
        }
        sub = next_sub;
    }

    // Finish — verbatim from `find_best_split`.
    let total = best + kappa_ind;
    if total < cap {
        table.set_cost(s, total);
        table.set_best_lhs(s, best_lhs);
    } else {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
    }
}

/// Batched/SIMD form of [`find_best_split_conv`], mirroring
/// [`crate::kernel::find_best_split_batched`] stage for stage: the
/// anchored walk runs ahead and deposits up to [`LANES`] candidate
/// `lhs` sets, the batch is judged branchlessly against best₀ through
/// the same gather helpers (they compute `rhs = s − lhs`, which for an
/// anchored candidate is exactly `rest − sub`), and surviving lanes are
/// re-judged in walk order against the running best — so the batched
/// conv kernel is bit-identical (rows, `best_lhs`, counters) to the
/// scalar conv cascade by the same argument that makes the batched
/// split kernel bit-identical to its scalar cascade.
fn find_best_split_conv_batched<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
    kernel: ResolvedKernel,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    stats.subset();
    let out_card = table.card(s);

    stats.kappa_ind();
    let kappa_ind = model.kappa_ind(out_card);
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(kappa_ind < cap) {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
        stats.loop_skipped();
        return;
    }

    // SAFETY: the pointer (when present) is dereferenced only by the
    // gather paths below, which index it with `lhs.index()` and
    // `rhs.index()` for nonempty strict subsets of `s` — every batched
    // candidate is `anchor ∪ sub` with `sub ⊊ s − anchor`, so both it
    // and its complement are nonempty strict subsets, all smaller than
    // `1 << rels()`, the extent `cost_base` guarantees — while the
    // `&mut L` borrow held by this function keeps the buffer alive.
    let base = unsafe { table.cost_base() };

    let mut best = f32::INFINITY;
    let mut best_lhs = RelSet::EMPTY;
    let mut lhs_buf = [RelSet::EMPTY; LANES_WIDE];
    let mut lhs_cost = [0.0f32; LANES_WIDE];
    let mut oprnd = [0.0f32; LANES_WIDE];
    let lanes = kernel.lanes();

    let anchor = s.lowest_singleton();
    let rest = s - anchor;
    // Same anchored walk, same order, same termination as the scalar
    // conv cascade; the batch buffer never reorders candidates, so the
    // first-wins tie-break is decided on exactly the scalar visit
    // order.
    let mut sub = RelSet::EMPTY;
    let mut done = false;
    while !done {
        let mut len = 0usize;
        while len < lanes && !done {
            stats.loop_iter();
            lhs_buf[len] = anchor | sub;
            len += 1;
            let next_sub = rest.subset_successor(sub);
            if next_sub == rest {
                done = true;
            } else {
                sub = next_sub;
            }
        }

        let mask = match (kernel, base) {
            #[cfg(target_arch = "x86_64")]
            (ResolvedKernel::Avx512, Some(base)) if len == LANES_WIDE => {
                // SAFETY: `Avx512` is only resolved after
                // `is_x86_feature_detected!("avx512f")`, and `base`
                // covers every gathered index per the `cost_base`
                // contract (all lanes hold nonempty strict subsets of
                // `s`).
                unsafe { gather_mask_avx512(base, s, &lhs_buf, best, &mut lhs_cost, &mut oprnd) }
            }
            #[cfg(target_arch = "x86_64")]
            (ResolvedKernel::Avx2, Some(base)) if len == LANES => {
                let lhs8 = lhs_buf.first_chunk::<LANES>().unwrap();
                let lc8 = lhs_cost.first_chunk_mut::<LANES>().unwrap();
                let op8 = oprnd.first_chunk_mut::<LANES>().unwrap();
                // SAFETY: `Avx2` is only resolved after
                // `is_x86_feature_detected!("avx2")`, and `base` covers
                // every gathered index per the `cost_base` contract
                // (all lanes hold nonempty strict subsets of `s`).
                unsafe { gather_mask_avx2(base, s, lhs8, best, lc8, op8) }
            }
            #[cfg(target_arch = "aarch64")]
            (ResolvedKernel::Neon, Some(base)) if len == LANES => {
                let lhs8 = lhs_buf.first_chunk::<LANES>().unwrap();
                let lc8 = lhs_cost.first_chunk_mut::<LANES>().unwrap();
                let op8 = oprnd.first_chunk_mut::<LANES>().unwrap();
                // SAFETY: NEON is baseline on aarch64, and `base` covers
                // every gathered index per the `cost_base` contract
                // (all lanes hold nonempty strict subsets of `s`).
                unsafe { gather_mask_neon(base, s, lhs8, best, lc8, op8) }
            }
            _ => gather_mask_portable(table, s, &lhs_buf, len, best, &mut lhs_cost, &mut oprnd),
        };

        // Re-judge surviving lanes in walk order against the running
        // best — the scalar cascade verbatim (see `crate::kernel`'s
        // counter-parity argument, which applies unchanged: only the
        // candidate sequence differs, and it is identical between the
        // scalar and batched conv walks).
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let cand = lhs_buf[i];
            let cand_cost = lhs_cost[i];
            if cand_cost < best {
                let oprnd_cost = oprnd[i];
                if oprnd_cost < best {
                    let dpnd_cost = if M::HAS_DEP {
                        stats.kappa_dep();
                        let rhs = s - cand;
                        // Every batched candidate is `anchor ∪ sub`, so
                        // `(cand, rhs)` is already the canonical
                        // lowest-relation-first order.
                        oprnd_cost
                            + model.kappa_dep(
                                out_card,
                                table.card(cand),
                                table.card(rhs),
                                table.aux(cand),
                                table.aux(rhs),
                            )
                    } else {
                        oprnd_cost
                    };
                    if dpnd_cost < best {
                        stats.cond_hit();
                        best = dpnd_cost;
                        best_lhs = cand;
                    }
                }
            }
        }
    }

    let total = best + kappa_ind;
    if total < cap {
        table.set_cost(s, total);
        table.set_best_lhs(s, best_lhs);
    } else {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DiskNestedLoops, Kappa0, SmDnl, SortMerge};
    use crate::spec::JoinSpec;
    use crate::stats::Counters;
    use crate::table::{AosTable, HotColdTable, SoaTable};

    #[test]
    fn driver_choice_names_roundtrip() {
        for choice in DriverChoice::ALL {
            assert_eq!(DriverChoice::parse(choice.name()), Some(choice));
            assert_eq!(format!("{choice}"), choice.name());
        }
        assert_eq!(DriverChoice::parse("fft"), None);
        assert_eq!(DriverChoice::default(), DriverChoice::Split);
    }

    #[test]
    fn resolution_respects_capability_and_crossover() {
        use crate::cost::ConvSupport::{Canonical, Fallback, Native};
        let d = CONV_AUTO_MIN_RELS;
        // Explicit choices: Split always sticks; Conv sticks iff the
        // model's support tier allows the halving at all.
        for n in [2, d, 20] {
            for support in [Native, Canonical] {
                assert_eq!(DriverChoice::Split.resolve(support, n, d), DriverChoice::Split);
                assert_eq!(DriverChoice::Conv.resolve(support, n, d), DriverChoice::Conv);
            }
            assert_eq!(DriverChoice::Split.resolve(Fallback, n, d), DriverChoice::Split);
            assert_eq!(DriverChoice::Conv.resolve(Fallback, n, d), DriverChoice::Split);
        }
        // Auto: conv only at/above the crossover, and only when allowed.
        assert_eq!(DriverChoice::Auto.resolve(Native, d - 1, d), DriverChoice::Split);
        assert_eq!(DriverChoice::Auto.resolve(Native, d, d), DriverChoice::Conv);
        assert_eq!(DriverChoice::Auto.resolve(Canonical, d, d), DriverChoice::Conv);
        assert_eq!(DriverChoice::Auto.resolve(Fallback, d + 4, d), DriverChoice::Split);
        // A calibrated crossover moves the Auto boundary, nothing else.
        assert_eq!(DriverChoice::Auto.resolve(Canonical, 3, 2), DriverChoice::Conv);
        assert_eq!(DriverChoice::Auto.resolve(Canonical, 3, 9), DriverChoice::Split);
        assert_eq!(DriverChoice::Conv.resolve(Canonical, 3, 9), DriverChoice::Conv);
    }

    #[test]
    fn capability_probe_matches_kappa_dep_shape() {
        use crate::cost::ConvSupport;
        // All four shipped models now run the halved enumeration — κ0
        // natively, the κ″ carriers through canonical operand ordering.
        assert_eq!(Kappa0.conv_support(), ConvSupport::Native);
        assert_eq!(SortMerge.conv_support(), ConvSupport::Canonical);
        assert_eq!(DiskNestedLoops::default().conv_support(), ConvSupport::Canonical);
        assert_eq!(SmDnl::default().conv_support(), ConvSupport::Canonical);
        assert!(Kappa0.conv_support().allows_conv());
        assert!(SortMerge.conv_support().allows_conv());
    }

    /// The anchored walk must visit exactly `2^(k−1) − 1` candidates
    /// per row — one orientation of every unordered partition.
    #[test]
    fn conv_visits_each_partition_once() {
        let spec = JoinSpec::cartesian(&[10.0; 7]).unwrap();
        let mut counters = Counters::default();
        let _: AosTable = optimize_conv_into::<AosTable, Kappa0, false>(&spec, &Kappa0, &mut counters);
        // Σ_{k=2..n} C(n,k)·(2^(k−1) − 1) = (3^n + 1)/2 − 2^n + (n(n−1)/2 … )
        // computed directly instead:
        let n = 7u32;
        let mut expect = 0u64;
        for k in 2..=n {
            let rows: u64 = {
                // C(n, k)
                let mut acc = 1u64;
                for i in 0..k {
                    acc = acc * u64::from(n - i) / u64::from(i + 1);
                }
                acc
            };
            expect += rows * ((1u64 << (k - 1)) - 1);
        }
        assert_eq!(counters.loop_iters, expect);
    }

    /// Driving every row through the conv cascade (scalar, unpruned or
    /// pruned per `PRUNE`), for the tests in this module.
    fn optimize_conv_into<L: TableLayout, M: CostModel, const PRUNE: bool>(
        spec: &JoinSpec,
        model: &M,
        stats: &mut Counters,
    ) -> L {
        let n = spec.n();
        let mut table = L::with_rels(n);
        for rel in 0..n {
            crate::split::init_singleton(&mut table, model, rel, spec.card(rel));
        }
        stats.pass();
        let end = 1u32 << n;
        let mut bits = 3u32;
        while bits < end {
            let s = RelSet::from_bits(bits);
            if !s.is_singleton() {
                crate::join::join_properties(&mut table, model, spec, s);
                find_best_split_conv::<L, M, Counters, PRUNE>(
                    &mut table,
                    model,
                    s,
                    f32::INFINITY,
                    stats,
                );
            }
            bits += 1;
        }
        table
    }

    /// On κ0 the conv driver's cost and cardinality columns must be
    /// **bit-identical** to the split driver's, across layouts and
    /// kernels, and the recorded `best_lhs` must denote the same
    /// unordered partition wherever the winning partition is unique.
    #[test]
    fn conv_cost_bits_match_split_on_kappa0() {
        let specs = [
            JoinSpec::new(
                &[120.0, 7.0, 3300.0, 42.0, 9.0, 260.0, 18.0],
                &[(0, 1, 0.01), (1, 2, 0.5), (2, 3, 0.002), (3, 4, 0.9), (0, 5, 0.03), (4, 6, 0.25)],
            )
            .unwrap(),
            JoinSpec::cartesian(&[10.0; 8]).unwrap(),
            JoinSpec::new(&[10.0, 20.0, 30.0, 40.0], &[(0, 1, 0.1), (2, 3, 0.2)]).unwrap(),
        ];
        for spec in &specs {
            let mut c_split = Counters::default();
            let split: AosTable = crate::join::optimize_join_into::<_, _, _, true>(
                spec,
                &Kappa0,
                f32::INFINITY,
                &mut c_split,
            );
            let mut c_conv = Counters::default();
            let conv: AosTable = optimize_conv_into::<AosTable, Kappa0, true>(spec, &Kappa0, &mut c_conv);
            let conv_soa: SoaTable = optimize_conv_into::<SoaTable, Kappa0, true>(spec, &Kappa0, &mut Counters::default());
            let conv_hc: HotColdTable =
                optimize_conv_into::<HotColdTable, Kappa0, true>(spec, &Kappa0, &mut Counters::default());
            for bits in 1u32..(1 << spec.n()) {
                let s = RelSet::from_bits(bits);
                assert_eq!(split.cost(s).to_bits(), conv.cost(s).to_bits(), "cost({s:?})");
                assert_eq!(split.card(s).to_bits(), conv.card(s).to_bits(), "card({s:?})");
                assert_eq!(conv.cost(s).to_bits(), conv_soa.cost(s).to_bits());
                assert_eq!(conv.cost(s).to_bits(), conv_hc.cost(s).to_bits());
                // Same unordered partition: conv's pointer is either
                // split's choice or its complement.
                if !s.is_singleton() && split.cost(s).is_finite() {
                    let sp = split.best_lhs(s);
                    let cv = conv.best_lhs(s);
                    assert!(
                        cv == sp || cv == s - sp,
                        "best_lhs({s:?}): split {sp:?} vs conv {cv:?}"
                    );
                }
            }
            // The halving is visible in the counters: conv walks
            // strictly fewer candidates on any spec with a row of
            // popcount ≥ 3.
            assert!(c_conv.loop_iters < c_split.loop_iters);
        }
    }

    /// Batched and SIMD conv kernels must reproduce the scalar conv
    /// cascade bit-for-bit — rows, `best_lhs`, and counters — across
    /// layouts, including on a tie-heavy uniform catalog.
    #[test]
    fn conv_kernels_are_bit_identical_to_scalar_conv() {
        let specs = [
            JoinSpec::cartesian(&[10.0; 9]).unwrap(),
            JoinSpec::new(
                &[120.0, 7.0, 3300.0, 42.0, 9.0, 260.0, 18.0],
                &[(0, 1, 0.01), (1, 2, 0.5), (2, 3, 0.002), (3, 4, 0.9), (0, 5, 0.03), (4, 6, 0.25)],
            )
            .unwrap(),
            JoinSpec::cartesian(&[1e30, 1e30, 1e32, 1e28, 1e30]).unwrap(),
        ];
        for spec in &specs {
            let reference = conv_snapshot::<AosTable>(spec, ResolvedKernel::Scalar);
            for kernel in [ResolvedKernel::Batched, crate::kernel::KernelChoice::Simd.resolve()] {
                let a = conv_snapshot::<AosTable>(spec, kernel);
                let b = conv_snapshot::<SoaTable>(spec, kernel);
                let c = conv_snapshot::<HotColdTable>(spec, kernel);
                for got in [&a, &b, &c] {
                    assert_eq!(got.0, reference.0, "rows via {kernel:?}");
                    assert_eq!(got.1, reference.1, "counters via {kernel:?}");
                }
            }
        }
    }

    fn conv_snapshot<L: TableLayout>(
        spec: &JoinSpec,
        kernel: ResolvedKernel,
    ) -> (Vec<(u64, u32, u32)>, Counters) {
        let n = spec.n();
        let mut counters = Counters::default();
        let mut table = L::with_rels(n);
        for rel in 0..n {
            crate::split::init_singleton(&mut table, &Kappa0, rel, spec.card(rel));
        }
        counters.pass();
        let end = 1u32 << n;
        let mut bits = 3u32;
        while bits < end {
            let s = RelSet::from_bits(bits);
            if !s.is_singleton() {
                crate::join::join_properties(&mut table, &Kappa0, spec, s);
                find_best_split_conv_with::<L, Kappa0, Counters, true>(
                    &mut table,
                    &Kappa0,
                    s,
                    f32::INFINITY,
                    &mut counters,
                    kernel,
                );
            }
            bits += 1;
        }
        let rows = (1u32..(1u32 << n))
            .map(|b| {
                let s = RelSet::from_bits(b);
                (table.card(s).to_bits(), table.cost(s).to_bits(), table.best_lhs(s).bits())
            })
            .collect();
        (rows, counters)
    }
}

/// Seeded wave-discipline violations driven through [`RowEngine`]'s conv
/// path: the shadow checker must catch the conv anchor walk's reads and
/// final write exactly as it catches the split walk's (the split-driver
/// twins live in `check.rs`). These prove the conv row fill is inside
/// the instrumentation, not just the accessors it happens to share.
#[cfg(all(test, blitz_check))]
mod check_tests {
    use super::*;
    use crate::bitset::RelSet;
    use crate::cost::Kappa0;
    use crate::kernel::ResolvedKernel;
    use crate::stats::NoStats;
    use crate::table::{AosTable, SyncTable, TableLayout};

    /// Conv engine with the scalar cascade pinned, so the seeded rows
    /// exercise `find_best_split_conv` itself.
    fn conv_engine() -> RowEngine {
        RowEngine { kernel: ResolvedKernel::Scalar, driver: DriverChoice::Conv, scalar_wave_floor: 0 }
    }

    /// Conv fill of a popcount-3 row while wave 4 is in progress: the
    /// anchor walk's reads are all of strictly earlier waves and pass,
    /// but the finishing `set_cost` is a cross-wave write.
    #[test]
    #[should_panic(expected = "wave-discipline violation")]
    fn conv_cross_wave_write_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread; the seeded violation is the
        // checker's to catch, not a real race.
        let mut view = unsafe { shared.view() };
        view.begin_wave(4, None);
        conv_engine().run_row::<_, _, _, true>(
            &mut view,
            &Kappa0,
            RelSet::from_bits(0b0111), // popcount 3 in wave 4
            f32::INFINITY,
            &mut NoStats,
        );
    }

    /// Conv fill of a popcount-3 row while wave 2 is in progress: the
    /// very first access, `card(s)`, reads a future-wave row.
    #[test]
    #[should_panic(expected = "later waves")]
    fn conv_future_wave_read_is_detected() {
        let mut t = AosTable::with_rels(5);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread.
        let mut view = unsafe { shared.view() };
        view.begin_wave(2, None);
        conv_engine().run_row::<_, _, _, true>(
            &mut view,
            &Kappa0,
            RelSet::from_bits(0b0111), // popcount 3 in wave 2
            f32::INFINITY,
            &mut NoStats,
        );
    }

    /// Conv fill of a row outside the worker's claimed chunk. The row's
    /// card is written first under an unbounded wave claim (so the
    /// walk's own-row `card(s)` read is legitimate), then the claim is
    /// narrowed and the conv fill's finishing write strays outside it.
    #[test]
    #[should_panic(expected = "outside this worker's chunk")]
    fn conv_out_of_chunk_write_is_detected() {
        let mut t = AosTable::with_rels(6);
        let shared = SyncTable::from_mut(&mut t);
        // SAFETY: single view on one thread.
        let mut view = unsafe { shared.view() };
        let s = RelSet::from_bits(0b11_1000); // {R3,R4,R5}: last wave-3 row (rank 19)
        view.begin_wave(3, None);
        view.set_card(s, 100.0);
        // Re-enter the same wave with a narrowed chunk claim [0, 4).
        view.begin_wave(3, Some((0, 4)));
        conv_engine().run_row::<_, _, _, true>(&mut view, &Kappa0, s, f32::INFINITY, &mut NoStats);
    }
}
