//! `find_best_split` — the `O(3^n)` inner engine shared by the Cartesian
//! product optimizer and the join optimizer (paper Figure 1 and
//! Section 4.2).
//!
//! This module realizes the three implementation-critical details of
//! Section 4.2:
//!
//! 1. subsets are walked with the successor trick
//!    `succ(S_lhs) = S & (S_lhs − S)`, never materializing the dilation
//!    operator;
//! 2. the `if` in the loop body is replaced by a series of *nested* `if`s,
//!    so that the split-dependent cost `κ''` is only computed when the
//!    operand costs alone do not already disqualify the split (reducing
//!    its execution count from `3^n` toward `(ln 2 / 2)·n·2^n`);
//! 3. `κ'(S)` is computed *before* the loop, and when it already overflows
//!    the cost cap the loop is skipped entirely (Sections 6.3–6.4).
//!
//! The function is generic over table layout, cost model, statistics sink
//! and the `PRUNE` switch (the ablation benches compile both variants).

use crate::bitset::RelSet;
use crate::cost::CostModel;
use crate::stats::Stats;
use crate::table::{SyncTable, SyncTableView, TableLayout, WaveTableLayout};

/// Execution options for the DP drivers — how much hardware to throw at
/// one optimization.
///
/// The default is read once per process from the `BLITZ_TEST_THREADS`
/// environment variable (unset or `1` ⇒ the serial driver), which lets a
/// CI job force every default-configured optimization in the workspace
/// through the parallel rank-wave driver without touching call sites.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DriveOptions {
    /// Worker threads for the rank-wave parallel driver. `1` is the
    /// serial integer-order driver (today's default); `0` resolves to the
    /// machine's available parallelism.
    pub parallelism: usize,
}

impl DriveOptions {
    /// Explicit serial execution, ignoring any environment override.
    pub fn serial() -> DriveOptions {
        DriveOptions { parallelism: 1 }
    }

    /// Rank-wave parallel execution on `threads` workers (`0` = auto).
    pub fn parallel(threads: usize) -> DriveOptions {
        DriveOptions { parallelism: threads }
    }

    /// The concrete worker count: resolves `0` to the machine's available
    /// parallelism and never returns 0.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            t => t,
        }
    }
}

impl Default for DriveOptions {
    fn default() -> DriveOptions {
        static ENV: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let parallelism = *ENV.get_or_init(|| {
            std::env::var("BLITZ_TEST_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1)
        });
        DriveOptions { parallelism }
    }
}

/// Fill in the `cost` and `best_lhs` fields of the table row for `s` by
/// examining every split of `s` into two nonempty subsets.
///
/// `cap` is the plan-cost threshold of Section 6.4; pass `f32::INFINITY`
/// for pure overflow-rejection semantics. Any plan whose cost reaches
/// `cap` is treated as if its cost had overflowed: the row's cost becomes
/// `+∞` and every superset rejects it through the operand-cost test.
///
/// The row's `card` (and `aux`) fields must already be filled in by the
/// caller's `compute_properties`.
#[inline]
pub(crate) fn find_best_split<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    stats.subset();
    let out_card = table.card(s);

    // κ'(S) is split-independent: hoist it out of the loop (fixed 2^n
    // execution count). If it alone breaches the cap, no split can help —
    // κ'' and operand costs are nonnegative — so skip the whole loop.
    stats.kappa_ind();
    let kappa_ind = model.kappa_ind(out_card);
    // Deliberately `!(x < cap)` rather than `x >= cap`: a NaN cost (which
    // a pathological model could produce) must also be rejected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(kappa_ind < cap) {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
        stats.loop_skipped();
        return;
    }

    let mut best = f32::INFINITY;
    let mut best_lhs = RelSet::EMPTY;

    // Walk S_lhs = δ_S(1), δ_S(2), …, δ_S(2^|S|−2); the walk naturally
    // terminates when the successor reaches S itself (= δ_S(2^|S|−1)).
    //
    // Tie-break determinism: dilation is order-preserving (i < j ⇒
    // δ_S(i) < δ_S(j) as integers), so this walk visits `lhs` in strictly
    // increasing bit-vector order, and the strict `<` comparisons below
    // keep the *first* minimum — i.e. the minimum-cost split with the
    // lowest `best_lhs` bits. The choice therefore depends only on the
    // rows of strict subsets of `s`, never on enumeration timing, which
    // is what makes the serial and rank-wave parallel drivers produce
    // bit-identical tables.
    let mut lhs = s.lowest_singleton();
    while lhs != s {
        stats.loop_iter();
        let rhs = s - lhs;

        if PRUNE {
            // Nested-if structure: each test can disqualify the split
            // before the next (more expensive) quantity is touched.
            let lhs_cost = table.cost(lhs);
            if lhs_cost < best {
                let oprnd_cost = lhs_cost + table.cost(rhs);
                if oprnd_cost < best {
                    let dpnd_cost = if M::HAS_DEP {
                        stats.kappa_dep();
                        oprnd_cost
                            + model.kappa_dep(
                                out_card,
                                table.card(lhs),
                                table.card(rhs),
                                table.aux(lhs),
                                table.aux(rhs),
                            )
                    } else {
                        oprnd_cost
                    };
                    if dpnd_cost < best {
                        stats.cond_hit();
                        best = dpnd_cost;
                        best_lhs = lhs;
                    }
                }
            }
        } else {
            // Unpruned variant (ablation): κ'' evaluated on every
            // iteration, exactly as in the Figure 1 pseudo-code.
            let oprnd_cost = table.cost(lhs) + table.cost(rhs);
            stats.kappa_dep();
            let dpnd_cost = oprnd_cost
                + model.kappa_dep(
                    out_card,
                    table.card(lhs),
                    table.card(rhs),
                    table.aux(lhs),
                    table.aux(rhs),
                );
            if dpnd_cost < best {
                stats.cond_hit();
                best = dpnd_cost;
                best_lhs = lhs;
            }
        }

        lhs = s.subset_successor(lhs);
    }

    let total = best + kappa_ind;
    if total < cap {
        table.set_cost(s, total);
        table.set_best_lhs(s, best_lhs);
    } else {
        // No split beat the threshold (or everything overflowed): reject.
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
    }
}

/// Initialize the table row for the singleton `{rel}` (paper Figure 1,
/// `init_singleton`): base relations cost nothing (equation (1)) and their
/// cardinality is given.
#[inline]
pub(crate) fn init_singleton<L, M>(table: &mut L, model: &M, rel: usize, card: f64)
where
    L: TableLayout,
    M: CostModel,
{
    let s = RelSet::singleton(rel);
    table.set_card(s, card);
    table.set_cost(s, 0.0);
    table.set_best_lhs(s, RelSet::EMPTY);
    table.set_pi_fan(s, 1.0);
    if M::HAS_AUX {
        table.set_aux(s, model.aux(card));
    }
}

/// Drive `compute_properties` + `find_best_split` over every non-singleton
/// subset in integer order (paper Section 4.2: processing sets by their
/// integer representations guarantees all subsets of `S` precede `S`).
///
/// `compute_properties` receives the table and the set and must fill in
/// `card` (and `pi_fan`/`aux` where applicable).
#[inline]
pub(crate) fn drive<L, M, St, F, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    n: usize,
    cap: f32,
    stats: &mut St,
    mut compute_properties: F,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
    F: FnMut(&mut L, &M, RelSet),
{
    stats.pass();
    let end = 1u32 << n;
    let mut bits = 3u32;
    while bits < end {
        let s = RelSet::from_bits(bits);
        // Skip powers of two: those are singletons, already initialized.
        if !s.is_singleton() {
            compute_properties(table, model, s);
            find_best_split::<L, M, St, PRUNE>(table, model, s, cap, stats);
        }
        bits += 1;
    }
}

/// Successor of `v` in the enumeration of same-popcount bit patterns
/// (Gosper's hack). `u64` so the final pattern's successor cannot
/// overflow for any supported `n`.
#[inline]
fn same_popcount_successor(v: u64) -> u64 {
    let c = v & v.wrapping_neg();
    let r = v + c;
    (((r ^ v) >> 2) / c) | r
}

/// Drive `compute_properties` + `find_best_split` over every non-singleton
/// subset in **rank waves**: all subsets of cardinality `k` are processed
/// (in parallel across `threads` workers) before any subset of
/// cardinality `k + 1`.
///
/// This is valid because every table access for a set `S` either writes
/// `S`'s own row or reads rows of strict subsets of `S` — which all have
/// smaller popcount and were completed in earlier waves. Within a wave,
/// rows are dealt round-robin to workers, so writes are disjoint; a
/// barrier separates waves. See [`SyncTable`] for the full safety
/// argument.
///
/// Produces a table bit-identical to [`drive`]'s: each row's computation
/// is self-contained and deterministic (see the tie-break note in
/// [`find_best_split`]), and both drivers respect the same subset-before-
/// superset dependency order.
pub(crate) fn drive_parallel<L, M, St, F, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    n: usize,
    cap: f32,
    threads: usize,
    stats: &mut St,
    compute_properties: F,
) where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
    F: Fn(&mut SyncTableView<L>, &M, RelSet) + Sync,
{
    debug_assert!(threads >= 2, "use `drive` for serial execution");
    stats.pass();
    let end = 1u64 << n;
    let shared = SyncTable::from_mut(table);
    let compute_properties = &compute_properties;
    let barrier = std::sync::Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                // SAFETY: round-robin row assignment within each wave
                // (each subset handled by exactly one worker), reads
                // confined to strictly-smaller-popcount rows from earlier
                // waves, and a barrier between waves — the SyncTable
                // discipline.
                let mut view = unsafe { shared.view() };
                scope.spawn(move || {
                    let mut local = St::default();
                    for k in 2..=n {
                        let mut row = 0usize;
                        let mut bits = (1u64 << k) - 1;
                        while bits < end {
                            if row % threads == t {
                                let s = RelSet::from_bits(bits as u32);
                                compute_properties(&mut view, model, s);
                                find_best_split::<SyncTableView<L>, M, St, PRUNE>(
                                    &mut view, model, s, cap, &mut local,
                                );
                            }
                            row += 1;
                            bits = same_popcount_successor(bits);
                        }
                        barrier.wait();
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            stats.absorb(worker.join().expect("wave worker panicked"));
        }
    });
}
