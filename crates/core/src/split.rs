//! `find_best_split` — the `O(3^n)` inner engine shared by the Cartesian
//! product optimizer and the join optimizer (paper Figure 1 and
//! Section 4.2).
//!
//! This module realizes the three implementation-critical details of
//! Section 4.2:
//!
//! 1. subsets are walked with the successor trick
//!    `succ(S_lhs) = S & (S_lhs − S)`, never materializing the dilation
//!    operator;
//! 2. the `if` in the loop body is replaced by a series of *nested* `if`s,
//!    so that the split-dependent cost `κ''` is only computed when the
//!    operand costs alone do not already disqualify the split (reducing
//!    its execution count from `3^n` toward `(ln 2 / 2)·n·2^n`);
//! 3. `κ'(S)` is computed *before* the loop, and when it already overflows
//!    the cost cap the loop is skipped entirely (Sections 6.3–6.4).
//!
//! The function is generic over table layout, cost model, statistics sink
//! and the `PRUNE` switch (the ablation benches compile both variants).

use crate::bitset::RelSet;
use crate::conv::{RowEngine, DriverChoice, CONV_AUTO_MIN_RELS, DEFAULT_SCALAR_WAVE_FLOOR};
use crate::cost::{ConvSupport, CostModel};
use crate::kernel::KernelChoice;
use crate::stats::Stats;
use crate::table::{LayoutChoice, SyncTable, SyncTableView, TableLayout, WaveTableLayout};

/// How the rank-wave parallel driver deals a wave's rows to workers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum WaveSchedule {
    /// Contiguous per-worker chunks of each wave, cache-line-aligned in
    /// wave-rank space (16 rows — one line of dense hot costs — per
    /// alignment unit). Adjacent workers write disjoint, monotone runs
    /// of table indices, so no cache line is ever ping-ponged between
    /// writers. The default.
    #[default]
    Chunked,
    /// Historical round-robin dealing (`row % threads == worker`): every
    /// worker walks the whole wave and neighbouring rows land on
    /// different cores, interleaving their writes on shared cache
    /// lines. Kept as the ablation baseline for the hotpath bench.
    RoundRobin,
}

impl WaveSchedule {
    /// Stable lower-case name (`chunked` / `roundrobin`).
    pub fn name(self) -> &'static str {
        match self {
            WaveSchedule::Chunked => "chunked",
            WaveSchedule::RoundRobin => "roundrobin",
        }
    }

    /// Inverse of [`name`](WaveSchedule::name); `None` for unknown names.
    pub fn parse(s: &str) -> Option<WaveSchedule> {
        match s {
            "chunked" => Some(WaveSchedule::Chunked),
            "roundrobin" => Some(WaveSchedule::RoundRobin),
            _ => None,
        }
    }
}

/// Execution options for the DP drivers — how much hardware to throw at
/// one optimization, and how the DP table is laid out in memory.
///
/// The default is read once per process from the environment —
/// `BLITZ_TEST_THREADS` (unset or `1` ⇒ the serial driver),
/// `BLITZ_TEST_LAYOUT` (`aos`/`soa`/`hotcold`), `BLITZ_TEST_KERNEL`
/// (`scalar`/`batched`/`simd`) and `BLITZ_TEST_DRIVER`
/// (`split`/`conv`/`auto`) — which lets a CI job force every
/// default-configured optimization in the workspace through the parallel
/// rank-wave driver, an alternate table layout, an alternate split
/// kernel and/or the convolution driver without touching call sites.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DriveOptions {
    /// Worker threads for the rank-wave parallel driver. `1` is the
    /// serial integer-order driver (today's default); `0` resolves to the
    /// machine's available parallelism.
    pub parallelism: usize,
    /// Table layout used by the *non-generic* entry points
    /// ([`crate::join::optimize_join_with`] and friends), which dispatch
    /// to the matching monomorphization. The generic `*_into*` functions
    /// take the layout as a type parameter and ignore this field.
    pub layout: LayoutChoice,
    /// Wave scheduling policy for the parallel driver (ignored by the
    /// serial driver).
    pub schedule: WaveSchedule,
    /// Split kernel for the `find_best_split` inner loop — scalar
    /// reference, portable batched, or runtime-dispatched SIMD. Resolved
    /// against the hardware once per drive; all kernels produce
    /// bit-identical tables, plans and counters (see [`crate::kernel`]).
    pub kernel: KernelChoice,
    /// DP driver filling each row: the reference split enumeration, the
    /// anchored layered-convolution driver, or an automatic pick.
    /// Resolved against the cost model's [`CostModel::CONV_SUPPORT`]
    /// capability once per drive; on `Native`/`Canonical` models the
    /// drivers are cost-bit-identical (see [`crate::conv`]).
    pub driver: DriverChoice,
    /// Relation count at which [`DriverChoice::Auto`] switches from the
    /// split driver to the convolution driver (on models whose
    /// [`CostModel::CONV_SUPPORT`] allows it). Compiled default is
    /// [`CONV_AUTO_MIN_RELS`]; [`DriveOptions::default`] replaces it
    /// with the measured crossover from the host calibration profile
    /// when one is loaded (see [`crate::calibrate`]).
    pub conv_min_rels: usize,
    /// Popcount below which rows run the scalar cascade regardless of
    /// [`DriveOptions::kernel`]: small waves cannot fill a batch, so
    /// batching them is pure overhead. Kernels are bit-identical, so
    /// this is pure scheduling. `0` disables the floor.
    pub scalar_wave_floor: u8,
}

impl DriveOptions {
    /// Explicit serial execution, ignoring any environment override and
    /// any loaded calibration profile (compiled constants throughout).
    pub fn serial() -> DriveOptions {
        DriveOptions {
            parallelism: 1,
            layout: LayoutChoice::default(),
            schedule: WaveSchedule::default(),
            kernel: KernelChoice::default(),
            driver: DriverChoice::default(),
            conv_min_rels: CONV_AUTO_MIN_RELS,
            scalar_wave_floor: DEFAULT_SCALAR_WAVE_FLOOR,
        }
    }

    /// Rank-wave parallel execution on `threads` workers (`0` = auto).
    pub fn parallel(threads: usize) -> DriveOptions {
        DriveOptions {
            parallelism: threads,
            layout: LayoutChoice::default(),
            schedule: WaveSchedule::default(),
            kernel: KernelChoice::default(),
            driver: DriverChoice::default(),
            conv_min_rels: CONV_AUTO_MIN_RELS,
            scalar_wave_floor: DEFAULT_SCALAR_WAVE_FLOOR,
        }
    }

    /// This policy with a different table layout.
    pub fn with_layout(self, layout: LayoutChoice) -> DriveOptions {
        DriveOptions { layout, ..self }
    }

    /// This policy with a different wave schedule.
    pub fn with_schedule(self, schedule: WaveSchedule) -> DriveOptions {
        DriveOptions { schedule, ..self }
    }

    /// This policy with a different split kernel.
    pub fn with_kernel(self, kernel: KernelChoice) -> DriveOptions {
        DriveOptions { kernel, ..self }
    }

    /// This policy with a different DP driver.
    pub fn with_driver(self, driver: DriverChoice) -> DriveOptions {
        DriveOptions { driver, ..self }
    }

    /// This policy with a different `Auto` driver crossover.
    pub fn with_conv_min_rels(self, conv_min_rels: usize) -> DriveOptions {
        DriveOptions { conv_min_rels, ..self }
    }

    /// This policy with a different scalar wave floor (`0` disables).
    pub fn with_scalar_wave_floor(self, scalar_wave_floor: u8) -> DriveOptions {
        DriveOptions { scalar_wave_floor, ..self }
    }

    /// The concrete worker count: resolves `0` to the machine's available
    /// parallelism and never returns 0.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            t => t,
        }
    }
}

impl Default for DriveOptions {
    fn default() -> DriveOptions {
        // Resolved once per process. Precedence per knob: explicit
        // `BLITZ_TEST_*` environment override > measured host profile
        // (`BLITZ_PROFILE`, see [`crate::calibrate`]) > compiled
        // constant. The profile carries only the knobs the calibrator
        // measures (kernel, scalar wave floor, `Auto` crossover);
        // layout, schedule, driver and thread count keep their compiled
        // defaults unless the environment says otherwise.
        static ENV: std::sync::OnceLock<DriveOptions> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| {
            let profile = crate::calibrate::host_profile();
            let parallelism = std::env::var("BLITZ_TEST_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(1);
            let layout = std::env::var("BLITZ_TEST_LAYOUT")
                .ok()
                .and_then(|v| LayoutChoice::parse(&v))
                .unwrap_or_default();
            let kernel = std::env::var("BLITZ_TEST_KERNEL")
                .ok()
                .and_then(|v| KernelChoice::parse(&v))
                .or_else(|| profile.and_then(|p| p.kernel))
                .unwrap_or_default();
            let driver = std::env::var("BLITZ_TEST_DRIVER")
                .ok()
                .and_then(|v| DriverChoice::parse(&v))
                .unwrap_or_default();
            let conv_min_rels = profile
                .and_then(|p| p.conv_min_rels)
                .unwrap_or(CONV_AUTO_MIN_RELS);
            let scalar_wave_floor = profile
                .and_then(|p| p.scalar_wave_floor)
                .unwrap_or(DEFAULT_SCALAR_WAVE_FLOOR);
            DriveOptions {
                parallelism,
                layout,
                schedule: WaveSchedule::default(),
                kernel,
                driver,
                conv_min_rels,
                scalar_wave_floor,
            }
        })
    }
}

/// Evaluate `κ''(S_out; lhs, rhs)` with the operand pair in *canonical*
/// orientation — the operand containing `min(S)` first — for models that
/// declared [`ConvSupport::Canonical`].
///
/// The convolution driver's anchored walk (`lhs = {min S} ∪ sub`)
/// produces exactly this orientation by construction, so normalizing the
/// split walk here makes every driver quote κ'' on the *same* operand
/// order: both orientations of an unordered partition round to the same
/// `f32` bits structurally, not by algebraic accident. The branch on the
/// associated `const` folds at monomorphization — `Native` models (κ''
/// absent or intrinsically symmetric) and `Fallback` models (no
/// exactness claim; raw walk order is the documented historical
/// behavior) pass their operands straight through.
#[inline(always)]
pub(crate) fn kappa_dep_oriented<L, M>(
    table: &L,
    model: &M,
    out_card: f64,
    s: RelSet,
    lhs: RelSet,
    rhs: RelSet,
) -> f32
where
    L: TableLayout,
    M: CostModel,
{
    let (l, r) = if matches!(M::CONV_SUPPORT, ConvSupport::Canonical)
        && lhs.is_disjoint(s.lowest_singleton())
    {
        (rhs, lhs)
    } else {
        (lhs, rhs)
    };
    model.kappa_dep(out_card, table.card(l), table.card(r), table.aux(l), table.aux(r))
}

/// Fill in the `cost` and `best_lhs` fields of the table row for `s` by
/// examining every split of `s` into two nonempty subsets.
///
/// `cap` is the plan-cost threshold of Section 6.4; pass `f32::INFINITY`
/// for pure overflow-rejection semantics. Any plan whose cost reaches
/// `cap` is treated as if its cost had overflowed: the row's cost becomes
/// `+∞` and every superset rejects it through the operand-cost test.
///
/// The row's `card` (and `aux`) fields must already be filled in by the
/// caller's `compute_properties`.
#[inline]
pub(crate) fn find_best_split<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    stats.subset();
    let out_card = table.card(s);

    // κ'(S) is split-independent: hoist it out of the loop (fixed 2^n
    // execution count). If it alone breaches the cap, no split can help —
    // κ'' and operand costs are nonnegative — so skip the whole loop.
    stats.kappa_ind();
    let kappa_ind = model.kappa_ind(out_card);
    // Deliberately `!(x < cap)` rather than `x >= cap`: a NaN cost (which
    // a pathological model could produce) must also be rejected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(kappa_ind < cap) {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
        stats.loop_skipped();
        return;
    }

    let mut best = f32::INFINITY;
    let mut best_lhs = RelSet::EMPTY;

    // Walk S_lhs = δ_S(1), δ_S(2), …, δ_S(2^|S|−2); the walk naturally
    // terminates when the successor reaches S itself (= δ_S(2^|S|−1)).
    //
    // Tie-break determinism: dilation is order-preserving (i < j ⇒
    // δ_S(i) < δ_S(j) as integers), so this walk visits `lhs` in strictly
    // increasing bit-vector order, and the strict `<` comparisons below
    // keep the *first* minimum — i.e. the minimum-cost split with the
    // lowest `best_lhs` bits. The choice therefore depends only on the
    // rows of strict subsets of `s`, never on enumeration timing, which
    // is what makes the serial and rank-wave parallel drivers produce
    // bit-identical tables.
    let mut lhs = s.lowest_singleton();
    while lhs != s {
        stats.loop_iter();
        let rhs = s - lhs;

        // The successor walk knows the *next* split one iteration ahead
        // for free, so start its operands' cost lines toward L1 while
        // the current split is judged. Purely advisory: prefetches are
        // hints, not reads, so pruning semantics, statistics and the
        // result bits are untouched. Gated on `L::PREFETCHES` so layouts
        // whose `prefetch_cost` is a no-op (AoS today) don't pay for the
        // `s - next_lhs` subtraction and two dead calls per iteration —
        // the constant folds the whole block away at monomorphization.
        let next_lhs = s.subset_successor(lhs);
        if L::PREFETCHES && next_lhs != s {
            table.prefetch_cost(next_lhs);
            table.prefetch_cost(s - next_lhs);
        }

        if PRUNE {
            // Nested-if structure: each test can disqualify the split
            // before the next (more expensive) quantity is touched.
            let lhs_cost = table.cost(lhs);
            if lhs_cost < best {
                let oprnd_cost = lhs_cost + table.cost(rhs);
                if oprnd_cost < best {
                    let dpnd_cost = if M::HAS_DEP {
                        stats.kappa_dep();
                        oprnd_cost + kappa_dep_oriented(table, model, out_card, s, lhs, rhs)
                    } else {
                        oprnd_cost
                    };
                    if dpnd_cost < best {
                        stats.cond_hit();
                        best = dpnd_cost;
                        best_lhs = lhs;
                    }
                }
            }
        } else {
            // Unpruned variant (ablation): κ'' evaluated on every
            // iteration, exactly as in the Figure 1 pseudo-code.
            let oprnd_cost = table.cost(lhs) + table.cost(rhs);
            stats.kappa_dep();
            let dpnd_cost = oprnd_cost + kappa_dep_oriented(table, model, out_card, s, lhs, rhs);
            if dpnd_cost < best {
                stats.cond_hit();
                best = dpnd_cost;
                best_lhs = lhs;
            }
        }

        lhs = next_lhs;
    }

    let total = best + kappa_ind;
    if total < cap {
        table.set_cost(s, total);
        table.set_best_lhs(s, best_lhs);
    } else {
        // No split beat the threshold (or everything overflowed): reject.
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
    }
}

/// Initialize the table row for the singleton `{rel}` (paper Figure 1,
/// `init_singleton`): base relations cost nothing (equation (1)) and their
/// cardinality is given.
#[inline]
pub(crate) fn init_singleton<L, M>(table: &mut L, model: &M, rel: usize, card: f64)
where
    L: TableLayout,
    M: CostModel,
{
    let s = RelSet::singleton(rel);
    table.set_card(s, card);
    table.set_cost(s, 0.0);
    table.set_best_lhs(s, RelSet::EMPTY);
    table.set_pi_fan(s, 1.0);
    if M::HAS_AUX {
        table.set_aux(s, model.aux(card));
    }
}

/// Drive `compute_properties` + `find_best_split` over every non-singleton
/// subset in integer order (paper Section 4.2: processing sets by their
/// integer representations guarantees all subsets of `S` precede `S`).
///
/// `compute_properties` receives the table and the set and must fill in
/// `card` (and `pi_fan`/`aux` where applicable).
#[inline]
pub(crate) fn drive<L, M, St, F, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    n: usize,
    cap: f32,
    engine: RowEngine,
    stats: &mut St,
    mut compute_properties: F,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
    F: FnMut(&mut L, &M, RelSet),
{
    stats.pass();
    let end = 1u32 << n;
    let mut bits = 3u32;
    while bits < end {
        let s = RelSet::from_bits(bits);
        // Skip powers of two: those are singletons, already initialized.
        if !s.is_singleton() {
            compute_properties(table, model, s);
            engine.run_row::<L, M, St, PRUNE>(table, model, s, cap, stats);
        }
        bits += 1;
    }
}

/// Successor of `v` in the enumeration of same-popcount bit patterns
/// (Gosper's hack). `u64` so the final pattern's successor cannot
/// overflow for any supported `n`.
///
/// The textbook form divides by `c = v & −v`; since `c` is always a
/// power of two, the hardware divide (tens of cycles, unpipelined on
/// most cores) is replaced by a shift by `c.trailing_zeros()` — this
/// runs once per row per worker in every wave of the parallel driver.
#[inline]
fn same_popcount_successor(v: u64) -> u64 {
    let c = v & v.wrapping_neg();
    let r = v + c;
    ((r ^ v) >> (2 + c.trailing_zeros())) | r
}

/// Binomial coefficient `C(n, k)`, exact in `u64` for every `n` the
/// table supports (`C(28, 14) ≈ 4·10^7`). Runs off the hot path: once
/// per worker per wave for chunk sizing and unranking.
pub(crate) fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // Exact at every step: the running product of `i+1` consecutive
        // integers is divisible by `(i+1)!`.
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc as u64
}

/// Row count of the widest wave the parallel driver will run (waves are
/// `k = 2..=n`); the useful upper bound on worker count.
fn widest_wave(n: usize) -> u64 {
    (2..=n).map(|k| binomial(n, k)).max().unwrap_or(0)
}

/// The `m`-th (0-based) `k`-subset in increasing bit-vector order —
/// the order Gosper's successor enumerates — via the combinatorial
/// number system (colex unranking): choosing bits from the highest
/// down, each is the largest `c` with `C(c, j) ≤` the remaining rank.
///
/// Lets a worker jump straight to the start of its chunk of a wave
/// instead of stepping the successor from the wave's first row.
fn nth_same_popcount(k: usize, mut m: u64) -> u64 {
    let mut bits = 0u64;
    for j in (1..=k).rev() {
        let mut c = j - 1;
        while binomial(c + 1, j) <= m {
            c += 1;
        }
        m -= binomial(c, j); // C(j−1, j) = 0: the lowest choice is free
        bits |= 1 << c;
    }
    bits
}

/// Colex rank of `bits` within the enumeration of its own popcount class
/// — the exact inverse of [`nth_same_popcount`]: for the `j`-th lowest
/// set bit (1-based) at position `c`, the patterns preceding `bits` in
/// Gosper order include all `C(c, j)` ways of placing the lowest `j` bits
/// strictly below `c`.
///
/// Off the hot path: used by the checked-build wave guard to validate
/// that a written row falls inside the worker's chunk.
#[cfg(any(blitz_check, debug_assertions))]
pub(crate) fn rank_same_popcount(bits: u64) -> u64 {
    let mut rank = 0u64;
    let mut rest = bits;
    let mut j = 0usize;
    while rest != 0 {
        let c = rest.trailing_zeros() as usize;
        j += 1;
        rank += binomial(c, j);
        rest &= rest - 1;
    }
    rank
}

/// Chunk-boundary alignment within a wave, in rows: 16 dense `f32`
/// costs = one 64-byte cache line of [`crate::table::HotColdTable`]'s
/// hot array, so two workers' hot-cost writes can only meet on a line
/// at most once per wave (at a rounding-truncated final chunk), not on
/// every line as with round-robin dealing.
const CHUNK_ALIGN_ROWS: u64 = 16;

/// Drive `compute_properties` + `find_best_split` over every non-singleton
/// subset in **rank waves**: all subsets of cardinality `k` are processed
/// (in parallel across `threads` workers) before any subset of
/// cardinality `k + 1`.
///
/// This is valid because every table access for a set `S` either writes
/// `S`'s own row or reads rows of strict subsets of `S` — which all have
/// smaller popcount and were completed in earlier waves. Within a wave,
/// each row is assigned to exactly one worker — by default a contiguous,
/// alignment-rounded chunk of the wave's Gosper enumeration per worker
/// ([`WaveSchedule::Chunked`]; workers jump to their chunk with
/// [`nth_same_popcount`]) — so writes are disjoint; a barrier separates
/// waves. See [`SyncTable`] for the full safety argument.
///
/// The worker count is clamped to the widest wave's row count: surplus
/// workers could never be handed a row and would only ever wait at
/// barriers, so small-`n` tables on many-core hosts (`n = 4`,
/// `threads = 16`) don't spawn 10 threads of pure synchronization.
///
/// Produces a table bit-identical to [`drive`]'s under *every* schedule
/// and worker count: each row's computation is self-contained and
/// deterministic (see the tie-break note in [`find_best_split`]), and
/// all drivers respect the same subset-before-superset dependency order
/// — which rows run on which worker, and in what order within a wave,
/// cannot be observed in the output bits.
pub(crate) fn drive_parallel<L, M, St, F, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    n: usize,
    cap: f32,
    options: DriveOptions,
    stats: &mut St,
    compute_properties: F,
) where
    L: WaveTableLayout + Send,
    M: CostModel + Sync,
    St: Stats + Default + Send,
    F: Fn(&mut SyncTableView<L>, &M, RelSet) + Sync,
{
    let threads = options.effective_parallelism();
    let schedule = options.schedule;
    // Resolve the kernel, driver and wave floor once, before any worker
    // spawns: feature detection and the model capability probe stay off
    // the row path and every worker dispatches on the same `Copy` token.
    let engine = RowEngine::resolve(options, model, n);
    debug_assert!(threads >= 2, "use `drive` for serial execution");
    stats.pass();
    let end = 1u64 << n;
    let threads = threads.min(usize::try_from(widest_wave(n)).unwrap_or(usize::MAX)).max(1);
    let shared = SyncTable::from_mut(table);
    if threads < 2 {
        // Degenerate table (n ≤ 2: every wave is a single row) — fill it
        // on this thread, still in wave order.
        // SAFETY: exactly one view on one thread; trivially race-free.
        let mut view = unsafe { shared.view() };
        for k in 2..=n {
            view.begin_wave(k, None);
            let mut bits = (1u64 << k) - 1;
            while bits < end {
                let s = RelSet::from_wave_bits(bits);
                compute_properties(&mut view, model, s);
                engine.run_row::<SyncTableView<L>, M, St, PRUNE>(&mut view, model, s, cap, stats);
                bits = same_popcount_successor(bits);
            }
        }
        return;
    }
    let compute_properties = &compute_properties;
    let barrier = std::sync::Barrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                // SAFETY: within each wave every row is handled by
                // exactly one worker (disjoint chunk ranges, or the
                // round-robin deal), reads are confined to
                // strictly-smaller-popcount rows from earlier waves, and
                // a barrier separates waves — the SyncTable discipline.
                let mut view = unsafe { shared.view() };
                scope.spawn(move || {
                    let mut local = St::default();
                    for k in 2..=n {
                        match schedule {
                            WaveSchedule::Chunked => {
                                let rows = binomial(n, k);
                                // Even deal, rounded up to whole cache
                                // lines of hot costs; trailing workers
                                // may come up empty on narrow waves.
                                let per = rows.div_ceil(threads as u64);
                                let chunk = per.div_ceil(CHUNK_ALIGN_ROWS) * CHUNK_ALIGN_ROWS;
                                let start = t as u64 * chunk;
                                let stop = (start + chunk).min(rows).max(start);
                                view.begin_wave(k, Some((start, stop)));
                                if start < rows {
                                    let mut bits = nth_same_popcount(k, start);
                                    for _ in start..stop {
                                        let s = RelSet::from_wave_bits(bits);
                                        compute_properties(&mut view, model, s);
                                        engine.run_row::<SyncTableView<L>, M, St, PRUNE>(
                                            &mut view, model, s, cap, &mut local,
                                        );
                                        bits = same_popcount_successor(bits);
                                    }
                                }
                            }
                            WaveSchedule::RoundRobin => {
                                // No contiguous rank range to pin down:
                                // round-robin ownership is checked only
                                // by the shadow words' per-row owners.
                                view.begin_wave(k, None);
                                let mut row = 0usize;
                                let mut bits = (1u64 << k) - 1;
                                while bits < end {
                                    if row % threads == t {
                                        let s = RelSet::from_wave_bits(bits);
                                        compute_properties(&mut view, model, s);
                                        engine.run_row::<SyncTableView<L>, M, St, PRUNE>(
                                            &mut view, model, s, cap, &mut local,
                                        );
                                    }
                                    row += 1;
                                    bits = same_popcount_successor(bits);
                                }
                            }
                        }
                        barrier.wait();
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            stats.absorb(worker.join().expect("wave worker panicked"));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shift form of Gosper's successor must agree with the
    /// textbook divide form on every pattern it will ever see.
    #[test]
    fn successor_shift_matches_divide_form() {
        fn divide_form(v: u64) -> u64 {
            let c = v & v.wrapping_neg();
            let r = v + c;
            (((r ^ v) >> 2) / c) | r
        }
        for n in 2..=16usize {
            for k in 1..=n {
                let mut bits = (1u64 << k) - 1;
                while bits < (1u64 << n) {
                    assert_eq!(same_popcount_successor(bits), divide_form(bits), "v={bits:#b}");
                    bits = same_popcount_successor(bits);
                }
            }
        }
    }

    #[test]
    fn binomial_matches_pascal() {
        let mut row = vec![1u64];
        for n in 0..=30usize {
            for (k, &v) in row.iter().enumerate() {
                assert_eq!(binomial(n, k), v, "C({n},{k})");
            }
            assert_eq!(binomial(n, n + 1), 0);
            let mut next = vec![1u64];
            for w in row.windows(2) {
                next.push(w[0] + w[1]);
            }
            next.push(1);
            row = next;
        }
        assert_eq!(binomial(28, 14), 40_116_600);
    }

    /// Unranking must land exactly where stepping the successor from the
    /// wave's first row lands.
    #[test]
    fn unranking_matches_successor_walk() {
        for n in 2..=12usize {
            for k in 1..=n {
                let mut bits = (1u64 << k) - 1;
                let rows = binomial(n, k);
                for m in 0..rows {
                    assert_eq!(
                        nth_same_popcount(k, m),
                        bits,
                        "n={n} k={k} m={m}"
                    );
                    bits = same_popcount_successor(bits);
                }
            }
        }
    }

    /// `rank_same_popcount` must be the exact inverse of
    /// `nth_same_popcount` across every wave of every supported width.
    #[cfg(any(blitz_check, debug_assertions))]
    #[test]
    fn ranking_inverts_unranking() {
        for n in 2..=12usize {
            for k in 1..=n {
                for m in 0..binomial(n, k) {
                    let bits = nth_same_popcount(k, m);
                    assert_eq!(rank_same_popcount(bits), m, "n={n} k={k} m={m}");
                }
            }
        }
    }

    #[test]
    fn widest_wave_is_the_middle_binomial() {
        assert_eq!(widest_wave(2), 1); // only the k=2 wave exists
        assert_eq!(widest_wave(3), 3);
        assert_eq!(widest_wave(4), 6);
        assert_eq!(widest_wave(16), binomial(16, 8));
    }

    /// Chunked dealing must assign every row of every wave to exactly
    /// one worker, whatever the worker count.
    #[test]
    fn chunks_partition_every_wave() {
        for n in 2..=12usize {
            for threads in 2..=17usize {
                for k in 2..=n {
                    let rows = binomial(n, k);
                    let per = rows.div_ceil(threads as u64);
                    let chunk = per.div_ceil(CHUNK_ALIGN_ROWS) * CHUNK_ALIGN_ROWS;
                    let mut covered = 0u64;
                    let mut prev_stop = 0u64;
                    for t in 0..threads as u64 {
                        let start = t * chunk;
                        if start >= rows {
                            continue;
                        }
                        let stop = (start + chunk).min(rows);
                        assert_eq!(start, prev_stop, "gap before worker {t}");
                        covered += stop - start;
                        prev_stop = stop;
                    }
                    assert_eq!(covered, rows, "n={n} k={k} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn drive_options_builders_compose() {
        let o = DriveOptions::parallel(4)
            .with_layout(LayoutChoice::HotCold)
            .with_schedule(WaveSchedule::RoundRobin)
            .with_kernel(KernelChoice::Simd)
            .with_driver(DriverChoice::Conv)
            .with_conv_min_rels(9)
            .with_scalar_wave_floor(0);
        assert_eq!(o.parallelism, 4);
        assert_eq!(o.layout, LayoutChoice::HotCold);
        assert_eq!(o.schedule, WaveSchedule::RoundRobin);
        assert_eq!(o.kernel, KernelChoice::Simd);
        assert_eq!(o.driver, DriverChoice::Conv);
        assert_eq!(o.conv_min_rels, 9);
        assert_eq!(o.scalar_wave_floor, 0);
        assert_eq!(DriveOptions::serial().effective_parallelism(), 1);
        assert_eq!(DriveOptions::serial().kernel, KernelChoice::Scalar);
        assert_eq!(DriveOptions::serial().driver, DriverChoice::Split);
        assert_eq!(DriveOptions::serial().conv_min_rels, CONV_AUTO_MIN_RELS);
        assert_eq!(DriveOptions::serial().scalar_wave_floor, DEFAULT_SCALAR_WAVE_FLOOR);
        for s in [WaveSchedule::Chunked, WaveSchedule::RoundRobin] {
            assert_eq!(WaveSchedule::parse(s.name()), Some(s));
        }
        assert_eq!(WaveSchedule::parse("diagonal"), None);
    }
}
