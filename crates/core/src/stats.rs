//! Instrumentation counters for the complexity analyses of Sections 3.3,
//! 6.2 and 6.4.
//!
//! The paper's performance model (formula (3)) decomposes running time into
//! three event classes:
//!
//! * `3^n · T_loop` — iterations of the split loop in `find_best_split`;
//! * `(ln 2 / 2)·n·2^n · T_cond` — executions of the conditionally executed
//!   body (best-so-far improvements, under the random-order argument);
//! * `2^n · T_subset` — straight-line per-subset work.
//!
//! [`Counters`] records these events plus `κ'`/`κ''` evaluation counts so
//! that the benchmark harness can verify the analytic bounds (e.g. that the
//! `κ''` count lies between `(ln 2 / 2)·n·2^n` and `3^n`, Section 6.2, and
//! falls below `n³/3` for chains under threshold pruning, Section 6.4).
//! [`NoStats`] compiles every hook to a no-op so the production optimizer
//! pays nothing; both are monomorphized.

/// Event sink for optimizer instrumentation. All hooks must be trivially
/// inlinable.
pub trait Stats {
    /// One iteration of the split loop (the `3^n` term).
    fn loop_iter(&mut self);
    /// One execution of the straight-line per-subset code (the `2^n` term).
    fn subset(&mut self);
    /// One evaluation of the split-independent cost `κ'`.
    fn kappa_ind(&mut self);
    /// One evaluation of the split-dependent cost `κ''`.
    fn kappa_dep(&mut self);
    /// One execution of the conditional body (best-so-far improved).
    fn cond_hit(&mut self);
    /// One subset whose split loop was skipped entirely (overflow /
    /// threshold pruning, Section 6.3–6.4).
    fn loop_skipped(&mut self);
    /// One full optimization pass (threshold re-optimization counts each).
    fn pass(&mut self);
    /// Fold a per-thread sink back into this one. The parallel rank-wave
    /// driver gives every worker thread a `Self::default()`-style private
    /// sink and absorbs them after the waves complete, so the hot loop
    /// never touches shared state.
    fn absorb(&mut self, child: Self)
    where
        Self: Sized;
}

/// Zero-cost sink: every hook is an empty inline function.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoStats;

impl Stats for NoStats {
    #[inline(always)]
    fn loop_iter(&mut self) {}
    #[inline(always)]
    fn subset(&mut self) {}
    #[inline(always)]
    fn kappa_ind(&mut self) {}
    #[inline(always)]
    fn kappa_dep(&mut self) {}
    #[inline(always)]
    fn cond_hit(&mut self) {}
    #[inline(always)]
    fn loop_skipped(&mut self) {}
    #[inline(always)]
    fn pass(&mut self) {}
    #[inline(always)]
    fn absorb(&mut self, _child: NoStats) {}
}

/// Counting sink used by the analysis benches.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Split-loop iterations (`3^n` in aggregate without pruning).
    pub loop_iters: u64,
    /// Straight-line per-subset executions (≈ `2^n`).
    pub subsets: u64,
    /// `κ'` evaluations (fixed at ≈ `2^n` without pruning).
    pub kappa_ind_evals: u64,
    /// `κ''` evaluations (between `(ln2/2)·n·2^n` and `3^n`).
    pub kappa_dep_evals: u64,
    /// Conditional-body executions (best-so-far improvements).
    pub cond_hits: u64,
    /// Subsets whose split loop was skipped by overflow/threshold pruning.
    pub loops_skipped: u64,
    /// Optimization passes (more than 1 ⇒ threshold re-optimization).
    pub passes: u64,
}

impl Stats for Counters {
    #[inline(always)]
    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }
    #[inline(always)]
    fn subset(&mut self) {
        self.subsets += 1;
    }
    #[inline(always)]
    fn kappa_ind(&mut self) {
        self.kappa_ind_evals += 1;
    }
    #[inline(always)]
    fn kappa_dep(&mut self) {
        self.kappa_dep_evals += 1;
    }
    #[inline(always)]
    fn cond_hit(&mut self) {
        self.cond_hits += 1;
    }
    #[inline(always)]
    fn loop_skipped(&mut self) {
        self.loops_skipped += 1;
    }
    #[inline(always)]
    fn pass(&mut self) {
        self.passes += 1;
    }
    #[inline(always)]
    fn absorb(&mut self, child: Counters) {
        *self += &child;
    }
}

impl std::ops::AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, rhs: &Counters) {
        self.loop_iters += rhs.loop_iters;
        self.subsets += rhs.subsets;
        self.kappa_ind_evals += rhs.kappa_ind_evals;
        self.kappa_dep_evals += rhs.kappa_dep_evals;
        self.cond_hits += rhs.cond_hits;
        self.loops_skipped += rhs.loops_skipped;
        self.passes += rhs.passes;
    }
}

impl Counters {
    /// Checked `usize → i32` exponent for the analytic `powi` bounds.
    /// Relation counts are ≤ 64 in practice; a hypothetical overflow
    /// saturates, and `powi(i32::MAX)` overflows to `f64::INFINITY`,
    /// which is the right bound for an astronomically large `n` anyway.
    fn powi_exp(n: usize) -> i32 {
        i32::try_from(n).unwrap_or(i32::MAX)
    }

    /// The analytic `3^n` bound on split-loop iterations (Section 3.3).
    pub fn bound_loop(n: usize) -> f64 {
        3f64.powi(Self::powi_exp(n))
    }

    /// The analytic expected count `(ln 2 / 2)·n·2^n` of conditional-body
    /// executions (Section 3.3).
    pub fn bound_cond(n: usize) -> f64 {
        (std::f64::consts::LN_2 / 2.0) * n as f64 * 2f64.powi(Self::powi_exp(n))
    }

    /// The `2^n` bound on per-subset straight-line work (Section 3.3).
    pub fn bound_subset(n: usize) -> f64 {
        2f64.powi(Self::powi_exp(n))
    }

    /// Left-deep `κ''` count bounds `((ln n)·2^n, (n/2)·2^n)` quoted in
    /// Section 6.2 (derivation omitted in the paper).
    pub fn bound_leftdeep(n: usize) -> (f64, f64) {
        let p = 2f64.powi(Self::powi_exp(n));
        ((n as f64).ln() * p, n as f64 / 2.0 * p)
    }

    /// The `n³/3` chain-query bound referenced in Section 6.4.
    pub fn bound_chain_poly(n: usize) -> f64 {
        (n as f64).powi(3) / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.loop_iter();
        c.loop_iter();
        c.subset();
        c.kappa_ind();
        c.kappa_dep();
        c.cond_hit();
        c.loop_skipped();
        c.pass();
        assert_eq!(c.loop_iters, 2);
        assert_eq!(c.subsets, 1);
        assert_eq!(c.kappa_ind_evals, 1);
        assert_eq!(c.kappa_dep_evals, 1);
        assert_eq!(c.cond_hits, 1);
        assert_eq!(c.loops_skipped, 1);
        assert_eq!(c.passes, 1);
    }

    #[test]
    fn analytic_bounds() {
        assert_eq!(Counters::bound_loop(3), 27.0);
        assert_eq!(Counters::bound_subset(10), 1024.0);
        let c = Counters::bound_cond(15);
        // (ln2/2)·15·2^15 ≈ 0.3466·15·32768 ≈ 170_361
        assert!((c - 170_000.0).abs() < 2_000.0, "{c}");
        let (lo, hi) = Counters::bound_leftdeep(15);
        assert!(lo < hi);
        assert!((Counters::bound_chain_poly(15) - 1125.0).abs() < 1.0);
    }

    #[test]
    fn nostats_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoStats>(), 0);
    }

    #[test]
    fn absorb_matches_add_assign() {
        let mut parent = Counters { loop_iters: 5, cond_hits: 1, ..Counters::default() };
        let child = Counters { loop_iters: 7, subsets: 4, ..Counters::default() };
        parent.absorb(child);
        assert_eq!(parent.loop_iters, 12);
        assert_eq!(parent.subsets, 4);
        assert_eq!(parent.cond_hits, 1);
        // NoStats absorb is a no-op but must exist for the parallel driver.
        let mut n = NoStats;
        n.absorb(NoStats);
    }

    #[test]
    fn counters_add_assign_sums_fieldwise() {
        let mut a = Counters { loop_iters: 1, subsets: 2, ..Counters::default() };
        let b = Counters { loop_iters: 10, passes: 3, ..Counters::default() };
        a += &b;
        assert_eq!(a.loop_iters, 11);
        assert_eq!(a.subsets, 2);
        assert_eq!(a.passes, 3);
    }

    /// The service layer moves specs, plans, models and counters across
    /// worker threads; these bounds are part of the public contract.
    #[test]
    fn optimizer_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::JoinSpec>();
        assert_send_sync::<crate::Plan>();
        assert_send_sync::<crate::Optimized>();
        assert_send_sync::<Counters>();
        assert_send_sync::<crate::ThresholdSchedule>();
        assert_send_sync::<crate::Kappa0>();
        assert_send_sync::<crate::SortMerge>();
        assert_send_sync::<crate::DiskNestedLoops>();
        assert_send_sync::<crate::SmDnl>();
    }
}
