//! # blitz-core — rapid bushy join-order optimization with Cartesian products
//!
//! A faithful, production-quality implementation of
//! **Bennet Vance & David Maier, "Rapid Bushy Join-order Optimization with
//! Cartesian Products", SIGMOD 1996** — the *blitzsplit* algorithm.
//!
//! The optimizer searches the **complete** space of bushy join trees,
//! Cartesian products included, by dynamic programming over the `2^n`
//! subsets of the query's relations. What makes it fast is not asymptotics
//! (`O(3^n)` time, `O(2^n)` space) but constant factors:
//!
//! * relation sets are machine integers; the split loop steps through
//!   subsets with `succ(S_lhs) = S & (S_lhs − S)` ([`bitset`]);
//! * the DP table is a flat array indexed by those integers ([`table`]);
//! * predicate selectivities fold into intermediate cardinalities through
//!   the *fan* recurrence at three multiplies per subset, leaving the
//!   enumeration untouched ([`join`]);
//! * the split-dependent cost component `κ''` is evaluated only when the
//!   operand costs alone don't already disqualify a split ([`split`]);
//! * exorbitant plans are rejected by `f32` overflow — or, proactively, by
//!   plan-cost thresholds with re-optimization ([`threshold`]).
//!
//! ## Quick start
//!
//! ```
//! use blitz_core::{optimize_join, JoinSpec, Kappa0};
//!
//! // A 4-relation query: cardinalities and (pairwise) selectivities.
//! let spec = JoinSpec::new(
//!     &[10.0, 20.0, 30.0, 40.0],
//!     &[(0, 1, 0.1), (0, 2, 0.2), (1, 2, 0.3), (0, 3, 0.4)],
//! ).unwrap();
//!
//! let best = optimize_join(&spec, &Kappa0).unwrap();
//! println!("plan {} costs {}", best.plan, best.cost);
//! assert!(best.cost.is_finite());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod bitset;
pub mod calibrate;
pub mod cartesian;
#[cfg(any(blitz_check, debug_assertions))]
mod check;
pub mod conv;
pub mod cost;
pub mod hyper;
pub mod join;
pub mod kernel;
pub mod ordered;
pub mod plan;
pub mod spec;
mod split;
pub mod stats;
pub mod table;
pub mod threshold;

pub use bitset::{RelSet, MAX_RELS};
pub use cartesian::{
    optimize_products, optimize_products_into, optimize_products_into_with,
    optimize_products_with, Optimized,
};
pub use calibrate::{calibrate, host_profile, CalibrateOptions, CalibrationProfile, PROFILE_ENV};
pub use conv::{DriverChoice, CONV_AUTO_MIN_RELS, DEFAULT_SCALAR_WAVE_FLOOR};
pub use cost::{ConvSupport, CostModel, DiskNestedLoops, JoinAlgorithm, Kappa0, SmDnl, SortMerge};
pub use hyper::{optimize_hyper, optimize_hyper_into, HyperSpec};
pub use join::{optimize_join, optimize_join_into, optimize_join_into_with, optimize_join_with};
pub use kernel::KernelChoice;
pub use ordered::{optimize_ordered, optimize_ordered_naive, OrderedOptimized, OrderedPlan, OrderedSpec};
pub use plan::{AnnotatedPlan, Plan, PlanArena, PlanNodeId};
pub use spec::{JoinSpec, SpecError};
pub use split::{DriveOptions, WaveSchedule};
pub use stats::{Counters, NoStats, Stats};
pub use table::{
    AosTable, CompactProductTable, HotColdTable, LayoutChoice, SoaTable, SyncTable, SyncTableView,
    TableLayout, WaveTableLayout, MAX_TABLE_RELS,
};
pub use threshold::{
    optimize_join_threshold, optimize_join_threshold_arena_with, optimize_join_threshold_into,
    optimize_join_threshold_into_with, optimize_join_threshold_reusing_with,
    optimize_join_threshold_with, ArenaThresholdOutcome, ThresholdOutcome, ThresholdSchedule,
};
