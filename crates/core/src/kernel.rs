//! Batched and SIMD split kernels for the `O(3^n)` inner loop.
//!
//! [`crate::split::find_best_split`] consumes the hot cost array one
//! 4-byte probe at a time: the pruning cascade is a long chain of scalar
//! compares, each waiting on its load. The kernels here reformulate the
//! loop at the instruction level without changing a single output bit:
//!
//! 1. **Batching.** The subset-successor walk is inherently serial, but
//!    each step is ~2 ALU ops — so the walk runs ahead and deposits up
//!    to [`LANES`] candidate `lhs` sets into a small buffer. The batch
//!    then has no serial dependencies left.
//! 2. **Gather.** For layouts exposing a dense cost column
//!    ([`TableLayout::cost_base`]), `cost[lhs]` (and, for surviving
//!    batches, `cost[rhs]`) is gathered for the whole batch at once —
//!    as per-lane loads feeding AVX2/NEON vectors; hardware
//!    `vgatherdps` measured slower than pipelined scalar loads on
//!    cache-resident tables (see [`gather_mask_avx2`]).
//! 3. **Branchless cascade.** The cascade's first test runs as one
//!    vector compare `lhs_cost < best` over every lane; a move-mask
//!    turns the survivors into a bit set. Most batches produce an empty
//!    mask and retire right there, after a single gather — mirroring the
//!    scalar cascade, which never touches `cost[rhs]` for a failing
//!    `lhs`. Only batches with survivors gather the `rhs` column and
//!    apply the second compare `lhs_cost + rhs_cost < best`.
//! 4. **Order-preserving reduction.** Surviving lanes are re-judged in
//!    ascending lane order against the *running* best, exactly as the
//!    scalar cascade would — preserving the first-wins tie-break
//!    contract documented in `find_best_split` and therefore bit-for-bit
//!    output parity (table bits, `best_lhs`, canonical plans).
//!
//! # Counter parity
//!
//! The issue planning this work expected kernel-mode [`crate::Counters`]
//! to diverge from the scalar cascade's short-circuit counts. The
//! re-judge pass makes that unnecessary — counters are *bit-identical*
//! to the scalar kernel, by this argument:
//!
//! The scalar cascade evaluates `κ''` for a lane iff `lhs_cost < best`
//! **and** `lhs_cost + rhs_cost < best` hold against the running best at
//! the moment the lane is reached. The vector mask keeps a lane iff
//! `lhs_cost < best₀` **and** `lhs_cost + rhs_cost < best₀` where
//! `best₀` is the running best at batch entry. Since `best` only ever
//! decreases, `best ≤ best₀` when the lane is re-judged, so every lane
//! the scalar cascade would have accepted is in the mask (each mask
//! condition is implied by the corresponding scalar test against the
//! tighter running best), and the re-judge applies the scalar's two
//! tests verbatim — in the same order, against the same running best —
//! before counting `kappa_dep` or `cond_hit`. Masked-out lanes are
//! exactly lanes the scalar cascade would have dropped before `κ''`.
//! NaN costs (a pathological model) compare `false` under `<` in both
//! the vector and scalar forms, so they drop out identically. Hence
//! `kappa_dep_evals`, `cond_hits`, `loop_iters` (counted while the
//! walk fills the buffer), `subsets` and `kappa_ind_evals` all match
//! the scalar kernel exactly, and the analytic counter identities of
//! Section 3.3 keep holding under every kernel.
//!
//! # Dispatch
//!
//! [`KernelChoice`] is the user-facing knob on
//! [`crate::DriveOptions`]; it resolves once per drive (never per row)
//! to a [`ResolvedKernel`]: `Simd` picks AVX-512 when
//! `is_x86_feature_detected!("avx512f")` says so, else AVX2, NEON on
//! aarch64, and degrades to the portable batched kernel elsewhere — so
//! `Simd` is always safe to request. The unpruned (`PRUNE = false`)
//! ablation variant has no cascade to vectorize — `κ''` runs on every
//! lane by definition — so all kernels delegate it to the scalar
//! reference. Batch buffers are sized to the widest kernel
//! ([`LANES_WIDE`]); each resolved kernel reports how many lanes of
//! them it fills per batch via [`ResolvedKernel::lanes`].

use crate::bitset::RelSet;
use crate::cost::CostModel;
use crate::split::{find_best_split, kappa_dep_oriented};
use crate::stats::Stats;
use crate::table::TableLayout;

/// Batch width of the 256-bit kernels: AVX2's eight `f32` lanes. The
/// NEON path consumes the same batch as two four-lane halves, and the
/// portable batch kernel as a plain loop the compiler can unroll.
pub(crate) const LANES: usize = 8;

/// Batch width of the widest kernel (AVX-512's sixteen `f32` lanes) and
/// therefore the size of the shared batch buffers; the narrower kernels
/// operate on a [`LANES`]-long prefix of them.
pub(crate) const LANES_WIDE: usize = 16;

/// Runtime name for the split-kernel variant used by the DP drivers,
/// selectable per [`crate::DriveOptions`] (env `BLITZ_TEST_KERNEL`, CLI
/// `--kernel`, service config). Every kernel produces bit-identical
/// tables, plans and [`crate::Counters`]; they differ only in speed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// The scalar reference cascade of [`crate::split`] — the paper's
    /// nested-`if` loop, one probe at a time. The default.
    #[default]
    Scalar,
    /// Portable batched kernel: successor walk buffered [`LANES`] ahead,
    /// cascade evaluated per batch, no explicit vector intrinsics.
    Batched,
    /// Runtime-dispatched SIMD kernel: AVX-512 mask-register batches on
    /// x86-64 when `avx512f` is detected, else AVX2 gather + vector
    /// compare, NEON on aarch64, otherwise the portable batched kernel.
    Simd,
}

impl KernelChoice {
    /// All selectable kernels, for ablation sweeps.
    pub const ALL: [KernelChoice; 3] =
        [KernelChoice::Scalar, KernelChoice::Batched, KernelChoice::Simd];

    /// Stable lower-case name (`scalar` / `batched` / `simd`).
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Scalar => "scalar",
            KernelChoice::Batched => "batched",
            KernelChoice::Simd => "simd",
        }
    }

    /// Inverse of [`name`](KernelChoice::name); `None` for unknown names.
    pub fn parse(s: &str) -> Option<KernelChoice> {
        match s {
            "scalar" => Some(KernelChoice::Scalar),
            "batched" => Some(KernelChoice::Batched),
            "simd" => Some(KernelChoice::Simd),
            _ => None,
        }
    }

    /// Resolve the user-facing choice against the running hardware, once
    /// per drive. `Simd` degrades gracefully: the batched kernel stands
    /// in wherever no vector path shipped (or the CPU lacks AVX2), so
    /// requesting `Simd` is always portable.
    pub(crate) fn resolve(self) -> ResolvedKernel {
        match self {
            KernelChoice::Scalar => ResolvedKernel::Scalar,
            KernelChoice::Batched => ResolvedKernel::Batched,
            KernelChoice::Simd => {
                #[cfg(target_arch = "x86_64")]
                {
                    if std::arch::is_x86_feature_detected!("avx512f") {
                        return ResolvedKernel::Avx512;
                    }
                    if std::arch::is_x86_feature_detected!("avx2") {
                        return ResolvedKernel::Avx2;
                    }
                    ResolvedKernel::Batched
                }
                #[cfg(target_arch = "aarch64")]
                {
                    ResolvedKernel::Neon
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                {
                    ResolvedKernel::Batched
                }
            }
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A [`KernelChoice`] pinned to the running hardware: the drivers
/// resolve once per drive and hand workers this `Copy` token, so the
/// feature detection never sits on the row path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum ResolvedKernel {
    /// Scalar reference cascade.
    Scalar,
    /// Portable batched kernel (also the `Simd` fallback).
    Batched,
    /// AVX2 gather + vector-compare batches.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512 mask-register batches ([`LANES_WIDE`] lanes).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// NEON batches (two four-lane halves per batch).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

impl ResolvedKernel {
    /// Candidates per batch for this kernel — how far the successor walk
    /// runs ahead before the cascade judges the batch. Batch width is
    /// invisible in the output: the in-order re-judge replays the exact
    /// scalar cascade against the running best whatever the width, so a
    /// 16-lane batch produces the same bits and counters as an 8-lane
    /// one (see the module docs).
    pub(crate) fn lanes(self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            ResolvedKernel::Avx512 => LANES_WIDE,
            _ => LANES,
        }
    }
}

/// Kernel-dispatching form of [`find_best_split`]: identical contract,
/// identical output bits and counters, with the split loop body executed
/// by the requested kernel.
#[inline]
pub(crate) fn find_best_split_with<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
    kernel: ResolvedKernel,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    // The unpruned ablation evaluates κ'' on every iteration — there is
    // no cascade to shortcut, so batching buys nothing and the scalar
    // reference runs for every kernel choice.
    if matches!(kernel, ResolvedKernel::Scalar) || !PRUNE {
        return find_best_split::<L, M, St, PRUNE>(table, model, s, cap, stats);
    }
    find_best_split_batched::<L, M, St, PRUNE>(table, model, s, cap, stats, kernel);
}

/// The batched/SIMD split kernel. Mirrors [`find_best_split`] stage for
/// stage (κ' hoist and loop skip, split walk, cascade, finish) with the
/// loop body batched as described in the module docs.
fn find_best_split_batched<L, M, St, const PRUNE: bool>(
    table: &mut L,
    model: &M,
    s: RelSet,
    cap: f32,
    stats: &mut St,
    kernel: ResolvedKernel,
) where
    L: TableLayout,
    M: CostModel,
    St: Stats,
{
    stats.subset();
    let out_card = table.card(s);

    // κ'(S) hoist + loop skip — verbatim from the scalar kernel.
    stats.kappa_ind();
    let kappa_ind = model.kappa_ind(out_card);
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(kappa_ind < cap) {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
        stats.loop_skipped();
        return;
    }

    // SAFETY: the pointer (when present) is dereferenced only by the
    // gather paths below, which index it with `lhs.index()` and
    // `rhs.index()` for nonempty strict subsets of `s` — all smaller
    // than `1 << rels()`, the extent `cost_base` guarantees — while the
    // `&mut L` borrow held by this function keeps the buffer alive.
    let base = unsafe { table.cost_base() };

    let mut best = f32::INFINITY;
    let mut best_lhs = RelSet::EMPTY;
    let mut lhs_buf = [RelSet::EMPTY; LANES_WIDE];
    let mut lhs_cost = [0.0f32; LANES_WIDE];
    let mut oprnd = [0.0f32; LANES_WIDE];
    let lanes = kernel.lanes();

    // Same walk, same order, same termination as the scalar kernel; the
    // batch buffer never reorders candidates, so the first-wins
    // tie-break is decided on exactly the scalar visit order. No
    // software prefetch here: the batch gathers touch the very lines a
    // hint would have requested, one batch ahead of the re-judge.
    let mut lhs = s.lowest_singleton();
    while lhs != s {
        // Run the successor walk ahead, depositing up to `lanes`
        // candidates. `loop_iters` counts here — once per candidate,
        // exactly as the scalar loop head does.
        let mut len = 0usize;
        while len < lanes && lhs != s {
            stats.loop_iter();
            lhs_buf[len] = lhs;
            len += 1;
            lhs = s.subset_successor(lhs);
        }

        // Gather operand costs and evaluate the first two cascade tests
        // branchlessly against best₀ (the running best at batch entry):
        // bit i of `mask` ⇔ `lhs_cost[i] < best₀` ∧
        // `lhs_cost[i] + rhs_cost[i] < best₀`. The rhs column is only
        // touched when some lane survives the first test — exactly the
        // load the scalar cascade skips for a failing lhs.
        let mask = match (kernel, base) {
            #[cfg(target_arch = "x86_64")]
            (ResolvedKernel::Avx512, Some(base)) if len == LANES_WIDE => {
                // SAFETY: `Avx512` is only resolved after
                // `is_x86_feature_detected!("avx512f")`, and `base`
                // covers every gathered index per the `cost_base`
                // contract (all lanes hold nonempty strict subsets of
                // `s`).
                unsafe { gather_mask_avx512(base, s, &lhs_buf, best, &mut lhs_cost, &mut oprnd) }
            }
            #[cfg(target_arch = "x86_64")]
            (ResolvedKernel::Avx2, Some(base)) if len == LANES => {
                // The 256-bit kernel fills a LANES-long prefix of the
                // wide buffers; `first_chunk` re-types that prefix
                // without copying. The unwraps are shape facts
                // (LANES ≤ LANES_WIDE), not runtime conditions.
                let lhs8 = lhs_buf.first_chunk::<LANES>().unwrap();
                let lc8 = lhs_cost.first_chunk_mut::<LANES>().unwrap();
                let op8 = oprnd.first_chunk_mut::<LANES>().unwrap();
                // SAFETY: `Avx2` is only resolved after
                // `is_x86_feature_detected!("avx2")`, and `base` covers
                // every gathered index per the `cost_base` contract (all
                // lanes hold nonempty strict subsets of `s`).
                unsafe { gather_mask_avx2(base, s, lhs8, best, lc8, op8) }
            }
            #[cfg(target_arch = "aarch64")]
            (ResolvedKernel::Neon, Some(base)) if len == LANES => {
                let lhs8 = lhs_buf.first_chunk::<LANES>().unwrap();
                let lc8 = lhs_cost.first_chunk_mut::<LANES>().unwrap();
                let op8 = oprnd.first_chunk_mut::<LANES>().unwrap();
                // SAFETY: NEON is baseline on aarch64, and `base` covers
                // every gathered index per the `cost_base` contract (all
                // lanes hold nonempty strict subsets of `s`).
                unsafe { gather_mask_neon(base, s, lhs8, best, lc8, op8) }
            }
            _ => gather_mask_portable(table, s, &lhs_buf, len, best, &mut lhs_cost, &mut oprnd),
        };

        // Re-judge surviving lanes in ascending (= walk) order against
        // the *running* best, applying the scalar cascade verbatim —
        // this is what keeps output bits, tie-breaks and counters
        // identical to the reference (see the module docs).
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let cand = lhs_buf[i];
            let cand_cost = lhs_cost[i];
            if cand_cost < best {
                let oprnd_cost = oprnd[i];
                if oprnd_cost < best {
                    let dpnd_cost = if M::HAS_DEP {
                        stats.kappa_dep();
                        let rhs = s - cand;
                        oprnd_cost + kappa_dep_oriented(table, model, out_card, s, cand, rhs)
                    } else {
                        oprnd_cost
                    };
                    if dpnd_cost < best {
                        stats.cond_hit();
                        best = dpnd_cost;
                        best_lhs = cand;
                    }
                }
            }
        }
    }

    // Finish — verbatim from the scalar kernel.
    let total = best + kappa_ind;
    if total < cap {
        table.set_cost(s, total);
        table.set_best_lhs(s, best_lhs);
    } else {
        table.set_cost(s, f32::INFINITY);
        table.set_best_lhs(s, RelSet::EMPTY);
    }
}

/// Portable batch evaluation through the layout's safe accessors: also
/// the tail path (fewer candidates than the kernel's lane count), the
/// no-dense-column path (e.g. [`crate::table::AosTable`]), and the
/// shadow-checked path (under `--cfg blitz_check`,
/// [`crate::table::SyncTableView::cost_base`] returns `None` so every
/// batched read funnels through the guard-checked `cost()` accessor and
/// the wave discipline stays machine-enforced). Operates on the shared
/// [`LANES_WIDE`] buffers; only the first `len` lanes are touched.
#[inline]
pub(crate) fn gather_mask_portable<L: TableLayout>(
    table: &L,
    s: RelSet,
    lhs_buf: &[RelSet; LANES_WIDE],
    len: usize,
    best: f32,
    lhs_cost: &mut [f32; LANES_WIDE],
    oprnd: &mut [f32; LANES_WIDE],
) -> u32 {
    let mut first = 0u32;
    for i in 0..len {
        let lc = table.cost(lhs_buf[i]);
        lhs_cost[i] = lc;
        first |= u32::from(lc < best) << i;
    }
    if first == 0 {
        return 0;
    }
    let mut mask = 0u32;
    let mut m = first;
    while m != 0 {
        let i = m.trailing_zeros() as usize;
        m &= m - 1;
        let oc = lhs_cost[i] + table.cost(s - lhs_buf[i]);
        oprnd[i] = oc;
        mask |= u32::from(oc < best) << i;
    }
    mask
}

/// AVX2 batch evaluation: the eight lhs costs are loaded lane-by-lane
/// from the dense cost column into a vector and hit with one
/// ordered-less-than compare against best₀; only if some lane survives
/// are the rhs costs loaded, added, and re-compared. Most batches
/// retire after the first compare with an empty mask, matching the
/// scalar cascade's habit of never loading `cost[rhs]` for a failing
/// lhs.
///
/// The lane loads are deliberately scalar: `vgatherdps` was measured
/// *slower* here — on cache-resident tables a hardware gather's ~20+
/// cycle latency lands on the critical path to the survivors branch,
/// while eight independent scalar loads pipeline through the load
/// ports and let the out-of-order core run batches ahead. The vector
/// win comes from the branchless eight-wide compare, not from how the
/// lanes are fetched. `_CMP_LT_OQ` is ordered and quiet: NaN lanes
/// compare `false`, exactly like the scalar `<`.
///
/// # Safety
///
/// Callers must ensure the `avx2` target feature is available on the
/// running CPU, and that `base` is valid for reads at offset
/// `lhs.index()` and `(s - lhs).index()` (in `f32` units) for every
/// `lhs` in `lhs_buf` — which the [`TableLayout::cost_base`] contract
/// provides for any nonempty strict subset of an in-bounds `s`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gather_mask_avx2(
    base: *const f32,
    s: RelSet,
    lhs_buf: &[RelSet; LANES],
    best: f32,
    lhs_cost: &mut [f32; LANES],
    oprnd: &mut [f32; LANES],
) -> u32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_set1_ps,
        _mm256_storeu_ps, _CMP_LT_OQ,
    };
    let mut lc8 = [0.0f32; LANES];
    for i in 0..LANES {
        // SAFETY: every `lhs_buf` index is in bounds for `base` per this
        // function's contract.
        lc8[i] = unsafe { *base.add(lhs_buf[i].index()) };
    }
    // SAFETY: unaligned loads from properly sized local arrays.
    let lc = unsafe { _mm256_loadu_ps(lc8.as_ptr()) };
    let best_v = _mm256_set1_ps(best);
    let first = lane_mask(_mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(lc, best_v)));
    if first == 0 {
        return 0;
    }
    let mut rc8 = [0.0f32; LANES];
    for i in 0..LANES {
        // SAFETY: every rhs index is in bounds for `base` per this
        // function's contract.
        rc8[i] = unsafe { *base.add((s - lhs_buf[i]).index()) };
    }
    // SAFETY: unaligned loads/stores on properly sized local arrays.
    unsafe {
        let op = _mm256_add_ps(lc, _mm256_loadu_ps(rc8.as_ptr()));
        let survivors = _mm256_cmp_ps::<_CMP_LT_OQ>(op, best_v);
        _mm256_storeu_ps(lhs_cost.as_mut_ptr(), lc);
        _mm256_storeu_ps(oprnd.as_mut_ptr(), op);
        first & lane_mask(_mm256_movemask_ps(survivors))
    }
}

/// AVX-512 batch evaluation: sixteen lanes per batch, judged by
/// mask-register compares. Structure mirrors [`gather_mask_avx2`] —
/// per-lane scalar loads lifted into one 512-bit vector, a first
/// ordered-less-than compare against best₀ whose `__mmask16` result
/// retires most batches without touching the rhs column, then the add
/// and second compare for survivors only. `_mm512_cmp_ps_mask` writes
/// its verdict straight to a mask register — no `movemask` shuffle as
/// on AVX2 — and `__mmask16` is plain `u16`, so the lane set widens to
/// `u32` losslessly via `u32::from`.
///
/// The lane loads are deliberately scalar, for the same measured reason
/// as the AVX2 path: on cache-resident tables a hardware gather's
/// serial latency beats sixteen independent pipelined loads. The win
/// is the 16-wide branchless compare (twice the AVX2 batch per cascade
/// test), not the fetch. `_CMP_LT_OQ` is ordered and quiet: NaN lanes
/// compare `false`, exactly like the scalar `<`.
///
/// # Safety
///
/// Callers must ensure the `avx512f` target feature is available on
/// the running CPU, and that `base` is valid for reads at offset
/// `lhs.index()` and `(s - lhs).index()` (in `f32` units) for every
/// `lhs` in `lhs_buf` — which the [`TableLayout::cost_base`] contract
/// provides for any nonempty strict subset of an in-bounds `s`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn gather_mask_avx512(
    base: *const f32,
    s: RelSet,
    lhs_buf: &[RelSet; LANES_WIDE],
    best: f32,
    lhs_cost: &mut [f32; LANES_WIDE],
    oprnd: &mut [f32; LANES_WIDE],
) -> u32 {
    use std::arch::x86_64::{
        _mm512_add_ps, _mm512_cmp_ps_mask, _mm512_loadu_ps, _mm512_set1_ps, _mm512_storeu_ps,
        _CMP_LT_OQ,
    };
    let mut lc16 = [0.0f32; LANES_WIDE];
    for i in 0..LANES_WIDE {
        // SAFETY: every `lhs_buf` index is in bounds for `base` per this
        // function's contract.
        lc16[i] = unsafe { *base.add(lhs_buf[i].index()) };
    }
    // SAFETY: unaligned loads from properly sized local arrays.
    let lc = unsafe { _mm512_loadu_ps(lc16.as_ptr()) };
    let best_v = _mm512_set1_ps(best);
    let first = u32::from(_mm512_cmp_ps_mask::<_CMP_LT_OQ>(lc, best_v));
    if first == 0 {
        return 0;
    }
    let mut rc16 = [0.0f32; LANES_WIDE];
    for i in 0..LANES_WIDE {
        // SAFETY: every rhs index is in bounds for `base` per this
        // function's contract.
        rc16[i] = unsafe { *base.add((s - lhs_buf[i]).index()) };
    }
    // SAFETY: unaligned loads/stores on properly sized local arrays.
    unsafe {
        let op = _mm512_add_ps(lc, _mm512_loadu_ps(rc16.as_ptr()));
        let survivors = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(op, best_v);
        _mm512_storeu_ps(lhs_cost.as_mut_ptr(), lc);
        _mm512_storeu_ps(oprnd.as_mut_ptr(), op);
        first & u32::from(survivors)
    }
}

/// Reinterpret a `movemask` result as a lane bitmask. The intrinsic
/// returns `i32` with only the low 8 bits ever set, so the conversion
/// is bit-preserving by construction; routing it through `to_ne_bytes`
/// keeps the hot path free of bare narrowing `as` casts.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn lane_mask(movemask: i32) -> u32 {
    u32::from_ne_bytes(movemask.to_ne_bytes())
}

/// NEON batch evaluation: the eight-lane batch is consumed as two
/// four-lane halves. aarch64 has no gather instruction, so lanes are
/// loaded individually into stack arrays and lifted into vectors; the
/// two-stage compare then mirrors the AVX2 path — a half whose four lhs
/// costs all fail `< best₀` retires without touching the rhs column,
/// like the scalar cascade. `vcltq_f32` is an ordered compare: NaN
/// lanes produce all-zero masks, like scalar `<`.
///
/// # Safety
///
/// `base` must be valid for reads at offset `lhs.index()` and
/// `(s - lhs).index()` (in `f32` units) for every `lhs` in `lhs_buf` —
/// which the [`TableLayout::cost_base`] contract provides for any
/// nonempty strict subset of an in-bounds `s`. (NEON is baseline on
/// every aarch64 target this crate builds for.)
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
pub(crate) unsafe fn gather_mask_neon(
    base: *const f32,
    s: RelSet,
    lhs_buf: &[RelSet; LANES],
    best: f32,
    lhs_cost: &mut [f32; LANES],
    oprnd: &mut [f32; LANES],
) -> u32 {
    use std::arch::aarch64::{
        vaddq_f32, vcltq_f32, vdupq_n_f32, vld1q_f32, vst1q_f32, vst1q_u32,
    };
    let best_v = vdupq_n_f32(best);
    let mut mask = 0u32;
    for half in 0..2usize {
        let o = half * 4;
        let mut lc4 = [0.0f32; 4];
        for i in 0..4 {
            // SAFETY: in-bounds offsets per this function's contract.
            unsafe {
                lc4[i] = *base.add(lhs_buf[o + i].index());
            }
        }
        // First cascade test on the whole half; a half with no survivor
        // retires before any rhs load.
        let mut first = 0u32;
        // SAFETY: 16-byte loads/stores on properly sized local arrays.
        unsafe {
            let lc = vld1q_f32(lc4.as_ptr());
            let lt1 = vcltq_f32(lc, best_v);
            let mut bits4 = [0u32; 4];
            vst1q_u32(bits4.as_mut_ptr(), lt1);
            for (i, b) in bits4.iter().enumerate() {
                first |= (b & 1) << i;
            }
        }
        if first == 0 {
            continue;
        }
        let mut rc4 = [0.0f32; 4];
        for i in 0..4 {
            // SAFETY: in-bounds offsets per this function's contract.
            unsafe {
                rc4[i] = *base.add((s - lhs_buf[o + i]).index());
            }
        }
        // SAFETY: 16-byte loads/stores on properly sized local arrays.
        unsafe {
            let lc = vld1q_f32(lc4.as_ptr());
            let op = vaddq_f32(lc, vld1q_f32(rc4.as_ptr()));
            let lt = vcltq_f32(op, best_v);
            vst1q_f32(lhs_cost.as_mut_ptr().add(o), lc);
            vst1q_f32(oprnd.as_mut_ptr().add(o), op);
            let mut bits4 = [0u32; 4];
            vst1q_u32(bits4.as_mut_ptr(), lt);
            for (i, b) in bits4.iter().enumerate() {
                mask |= ((first >> i) & b & 1) << (o + i);
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{DiskNestedLoops, Kappa0, SmDnl, SortMerge};
    use crate::spec::JoinSpec;
    use crate::stats::Counters;
    use crate::table::{AosTable, HotColdTable, SoaTable};

    #[test]
    fn kernel_choice_names_roundtrip() {
        for choice in KernelChoice::ALL {
            assert_eq!(KernelChoice::parse(choice.name()), Some(choice));
            assert_eq!(format!("{choice}"), choice.name());
        }
        assert_eq!(KernelChoice::parse("avx512"), None);
        assert_eq!(KernelChoice::default(), KernelChoice::Scalar);
    }

    #[test]
    fn simd_resolves_without_panicking_anywhere() {
        // Whatever the host, `Simd` must resolve to *something* runnable.
        let r = KernelChoice::Simd.resolve();
        assert_ne!(r, ResolvedKernel::Scalar, "Simd should at least batch");
        assert_eq!(KernelChoice::Scalar.resolve(), ResolvedKernel::Scalar);
        assert_eq!(KernelChoice::Batched.resolve(), ResolvedKernel::Batched);
    }

    /// Every kernel × every layout must reproduce the scalar AoS rows,
    /// `best_lhs`, *and* counters bit-for-bit — including under a model
    /// with κ'' (the cascade's third stage) and one with aux memos.
    #[test]
    fn kernels_are_bit_identical_to_scalar_reference() {
        let spec = JoinSpec::new(
            &[120.0, 7.0, 3300.0, 42.0, 9.0, 260.0, 18.0],
            &[
                (0, 1, 0.01),
                (1, 2, 0.5),
                (2, 3, 0.002),
                (3, 4, 0.9),
                (0, 5, 0.03),
                (4, 6, 0.25),
            ],
        )
        .unwrap();
        check_spec_against_reference(&spec);
    }

    /// Tie-heavy catalog: uniform cardinalities and selectivities make
    /// many splits cost-equal, so any reduction that does not preserve
    /// the first-wins order shows up as a different `best_lhs`.
    #[test]
    fn kernels_preserve_first_wins_ties() {
        let spec = JoinSpec::cartesian(&[10.0; 9]).unwrap();
        check_spec_against_reference(&spec);
    }

    /// Overflowing costs must reject identically through every kernel
    /// (the κ' loop skip and the `+∞` finish path).
    #[test]
    fn kernels_agree_on_overflow() {
        let spec = JoinSpec::cartesian(&[1e30, 1e30, 1e32, 1e28, 1e30]).unwrap();
        check_spec_against_reference(&spec);
    }

    fn check_spec_against_reference(spec: &JoinSpec) {
        fn snapshot<L: TableLayout, M: CostModel>(
            spec: &JoinSpec,
            model: &M,
            kernel: ResolvedKernel,
        ) -> (Vec<(u64, u32, u32)>, Counters) {
            let mut counters = Counters::default();
            let table: L = crate::join::optimize_join_into_kernel::<L, M, Counters, true>(
                spec,
                model,
                f32::INFINITY,
                kernel,
                &mut counters,
            );
            let rows = (1u32..(1u32 << spec.n()))
                .map(|b| {
                    let s = RelSet::from_bits(b);
                    (table.card(s).to_bits(), table.cost(s).to_bits(), table.best_lhs(s).bits())
                })
                .collect();
            (rows, counters)
        }
        fn check_model<M: CostModel>(spec: &JoinSpec, model: &M) {
            let reference = snapshot::<AosTable, M>(spec, model, ResolvedKernel::Scalar);
            for kernel in [ResolvedKernel::Batched, KernelChoice::Simd.resolve()] {
                let a = snapshot::<AosTable, M>(spec, model, kernel);
                let b = snapshot::<SoaTable, M>(spec, model, kernel);
                let c = snapshot::<HotColdTable, M>(spec, model, kernel);
                for got in [&a, &b, &c] {
                    assert_eq!(got.0, reference.0, "{} rows via {kernel:?}", model.name());
                    assert_eq!(got.1, reference.1, "{} counters via {kernel:?}", model.name());
                }
            }
        }
        check_model(spec, &Kappa0);
        check_model(spec, &SortMerge);
        check_model(spec, &DiskNestedLoops::default());
        check_model(spec, &SmDnl::default());
    }
}
