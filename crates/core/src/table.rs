//! The dynamic-programming table (paper Sections 3.2, 4.1 and 5.4).
//!
//! The table has one row per nonempty subset of the `n` relations, indexed
//! by the subset's integer bit-vector representation, for `2^n` slots in
//! all (slot 0, the empty set, is unused). Each row carries:
//!
//! * `card` — the (estimated) cardinality of the intermediate result over
//!   the subset (`f64` for wide dynamic range, per footnote 2);
//! * `cost` — the cost of the best plan found (`f32`; overflow ⇒ `+∞` ⇒
//!   rejected, per Section 6.3);
//! * `best_lhs` — the left-hand side of the best split (bit-vector);
//! * `pi_fan` — the memoized fan selectivity product `Π_fan` (Section 5.4;
//!   join optimization only);
//! * `aux` — an optional cost-model memo (e.g. the sort-merge log term).
//!
//! Several layouts are provided behind the [`TableLayout`] trait so that
//! the benchmark harness can ablate the choice: [`AosTable`] (array of
//! structs, the paper's layout), [`SoaTable`] (struct of arrays),
//! [`CompactProductTable`] (the paper's exact 16-byte product row) and
//! [`HotColdTable`] (hot/cold split: a dense, 64-byte-aligned `cost`
//! array feeds the pruning cascade at 4 bytes per probe, with every
//! other column banished to cold arrays). The optimizer is generic over
//! the layout and monomorphizes each; [`LayoutChoice`] names them for
//! runtime dispatch at the non-generic entry points.

use crate::bitset::{RelSet, MAX_RELS};
use std::marker::PhantomData;

/// Runtime name for a monomorphized table layout, used by the
/// non-generic entry points ([`crate::join::optimize_join_with`] and
/// friends) and the service/CLI configuration surface. The generic
/// `*_into*` functions ignore it — there the caller picks the layout as
/// a type parameter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum LayoutChoice {
    /// [`AosTable`] — the paper's array-of-structs layout.
    #[default]
    Aos,
    /// [`SoaTable`] — one dense array per column.
    Soa,
    /// [`HotColdTable`] — dense aligned `cost` hot array, cold rest.
    HotCold,
}

impl LayoutChoice {
    /// All selectable layouts, for ablation sweeps.
    pub const ALL: [LayoutChoice; 3] = [LayoutChoice::Aos, LayoutChoice::Soa, LayoutChoice::HotCold];

    /// Stable lower-case name (`aos` / `soa` / `hotcold`).
    pub fn name(self) -> &'static str {
        match self {
            LayoutChoice::Aos => "aos",
            LayoutChoice::Soa => "soa",
            LayoutChoice::HotCold => "hotcold",
        }
    }

    /// Inverse of [`name`](LayoutChoice::name); `None` for unknown names.
    pub fn parse(s: &str) -> Option<LayoutChoice> {
        match s {
            "aos" => Some(LayoutChoice::Aos),
            "soa" => Some(LayoutChoice::Soa),
            "hotcold" => Some(LayoutChoice::HotCold),
            _ => None,
        }
    }
}

impl std::fmt::Display for LayoutChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best-effort prefetch of the cache line holding `*p` into L1.
///
/// Compiles to `prefetcht0` on x86-64 and `prfm pldl1keep` elsewhere
/// on aarch64; a no-op on other architectures. Prefetch instructions
/// are architectural hints: they never fault and perform no observable
/// memory access, so issuing one is not a read in the data-race sense —
/// it is safe even for rows another thread is concurrently writing.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint with no architectural effect on
    // memory or registers; it cannot fault even on invalid addresses.
    unsafe {
        std::arch::x86_64::_mm_prefetch(p as *const i8, std::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP is likewise a non-faulting hint.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Guard against absurd allocations: `2^28` rows of 32 bytes is 8 GiB.
pub const MAX_TABLE_RELS: usize = 28;

/// Storage for the dynamic-programming table, indexed by [`RelSet`].
///
/// All accessors are expected to be O(1) and inline; they sit inside the
/// optimizer's `O(3^n)` split loop.
pub trait TableLayout {
    /// Allocate a table for `n` relations (`2^n` rows).
    ///
    /// # Panics
    /// Panics if `n > MAX_TABLE_RELS` (or `n > MAX_RELS`).
    fn with_rels(n: usize) -> Self;

    /// Number of relations this table was allocated for.
    fn rels(&self) -> usize;

    /// Estimated cardinality of the set's intermediate result.
    fn card(&self, s: RelSet) -> f64;
    /// Set the cardinality field.
    fn set_card(&mut self, s: RelSet, v: f64);

    /// Cost of the best plan found for the set (`+∞` if none).
    fn cost(&self, s: RelSet) -> f32;
    /// Set the cost field.
    fn set_cost(&mut self, s: RelSet, v: f32);

    /// Left-hand side of the best split (`EMPTY` for singletons).
    fn best_lhs(&self, s: RelSet) -> RelSet;
    /// Set the best-split field.
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet);

    /// Memoized fan selectivity product `Π_fan(S)` (Section 5.3).
    fn pi_fan(&self, s: RelSet) -> f64;
    /// Set the fan product field.
    fn set_pi_fan(&mut self, s: RelSet, v: f64);

    /// Memoized per-set cost-model value (see [`crate::cost::CostModel::aux`]).
    fn aux(&self, s: RelSet) -> f32;
    /// Set the cost-model memo field.
    fn set_aux(&mut self, s: RelSet, v: f32);

    /// Whether [`prefetch_cost`](TableLayout::prefetch_cost) can do
    /// anything at all on this layout/target. The split loop consults
    /// this compile-time constant before computing prefetch operands
    /// (`s - next_lhs`) and issuing hints, so layouts with a no-op
    /// `prefetch_cost` — the default, or any layout on an architecture
    /// without prefetch instructions — pay nothing per iteration.
    const PREFETCHES: bool = false;

    /// Hint that [`cost`](TableLayout::cost)`(s)` will be read shortly:
    /// the split loop's successor walk knows the *next* iteration's
    /// operands one step ahead, so the line can be in flight while the
    /// current split is judged. Purely advisory — the default is a
    /// no-op, and out-of-range sets are ignored.
    #[inline]
    fn prefetch_cost(&self, _s: RelSet) {}

    /// Base pointer of a dense `cost` column indexed by
    /// [`RelSet::index`], if this layout has one — the batched/SIMD
    /// split kernels gather operand costs straight from it. The default
    /// `None` routes kernels through the safe
    /// [`cost`](TableLayout::cost) accessor instead (AoS has no dense
    /// column; checked-build views decline on purpose so every read
    /// stays guard-validated).
    ///
    /// # Safety
    ///
    /// Implementors returning `Some(p)` guarantee `p` is valid for reads
    /// of `1 << rels()` consecutive `f32`s (the whole cost column, one
    /// per row index) for as long as `self` is borrowed. Callers must
    /// not read through the pointer beyond that extent or after the
    /// borrow ends, and — on shared views — must respect the same
    /// race-freedom discipline as [`cost`](TableLayout::cost) reads.
    #[inline]
    unsafe fn cost_base(&self) -> Option<*const f32> {
        None
    }
}

fn check_rels(n: usize) {
    assert!(n <= MAX_RELS, "{n} relations exceed MAX_RELS = {MAX_RELS}");
    assert!(
        n <= MAX_TABLE_RELS,
        "{n} relations exceed MAX_TABLE_RELS = {MAX_TABLE_RELS} (table would need 2^{n} rows)"
    );
}

/// One row of the array-of-structs layout.
///
/// 32 bytes: the paper's 16-byte product row (`card` + `cost` + `best_lhs`)
/// plus the `Π_fan` column added in Section 5.4 and the cost-model memo.
#[derive(Copy, Clone, Debug)]
#[repr(C)]
struct Row {
    card: f64,
    pi_fan: f64,
    cost: f32,
    best_lhs: u32,
    aux: f32,
    _pad: u32,
}

impl Default for Row {
    fn default() -> Self {
        Row { card: 0.0, pi_fan: 1.0, cost: f32::INFINITY, best_lhs: 0, aux: 0.0, _pad: 0 }
    }
}

/// Array-of-structs table layout — each row's fields are contiguous, as in
/// the paper's C implementation.
pub struct AosTable {
    n: usize,
    rows: Vec<Row>,
}

impl TableLayout for AosTable {
    // `prefetch_cost` below issues real hints only where the target has
    // prefetch instructions; elsewhere the split loop should skip the
    // operand computation entirely.
    const PREFETCHES: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

    fn with_rels(n: usize) -> Self {
        check_rels(n);
        AosTable { n, rows: vec![Row::default(); 1usize << n] }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.rows[s.index()].card
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.rows[s.index()].card = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.rows[s.index()].cost
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.rows[s.index()].cost = v;
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.rows[s.index()].best_lhs)
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.rows[s.index()].best_lhs = v.bits();
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        self.rows[s.index()].pi_fan
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        self.rows[s.index()].pi_fan = v;
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        self.rows[s.index()].aux
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        self.rows[s.index()].aux = v;
    }

    #[inline]
    fn prefetch_cost(&self, s: RelSet) {
        if let Some(row) = self.rows.get(s.index()) {
            prefetch_read(&row.cost);
        }
    }
}

/// Struct-of-arrays table layout — one dense array per column. The split
/// loop touches only `cost` (always) and `card`/`aux` (conditionally), so
/// separating the columns can improve cache residency for large `n`; the
/// ablation bench quantifies this.
pub struct SoaTable {
    n: usize,
    cards: Vec<f64>,
    pi_fans: Vec<f64>,
    costs: Vec<f32>,
    best_lhss: Vec<u32>,
    auxs: Vec<f32>,
}

impl TableLayout for SoaTable {
    // See `AosTable`: hints are real only on prefetch-capable targets.
    const PREFETCHES: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

    fn with_rels(n: usize) -> Self {
        check_rels(n);
        let cap = 1usize << n;
        SoaTable {
            n,
            cards: vec![0.0; cap],
            pi_fans: vec![1.0; cap],
            costs: vec![f32::INFINITY; cap],
            best_lhss: vec![0; cap],
            auxs: vec![0.0; cap],
        }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.cards[s.index()]
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.cards[s.index()] = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.costs[s.index()]
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.costs[s.index()] = v;
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.best_lhss[s.index()])
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.best_lhss[s.index()] = v.bits();
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        self.pi_fans[s.index()]
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        self.pi_fans[s.index()] = v;
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        self.auxs[s.index()]
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        self.auxs[s.index()] = v;
    }

    #[inline]
    fn prefetch_cost(&self, s: RelSet) {
        if let Some(c) = self.costs.get(s.index()) {
            prefetch_read(c);
        }
    }

    // SAFETY: (implementor-side guarantee) `costs` is a `Vec<f32>` of
    // exactly `1 << n` elements, fully initialized at allocation and
    // never reallocated, so its base pointer is valid for the whole
    // column while `self` is borrowed.
    #[inline]
    unsafe fn cost_base(&self) -> Option<*const f32> {
        Some(self.costs.as_ptr())
    }
}

/// One row of the paper-exact 16-byte layout (Section 4.1):
///
/// > each row of our dynamic programming table need occupy only 16
/// > bytes: 8 bytes for the real `card`, 4 bytes for the real `cost`,
/// > and 4 bytes for the bit-vector `best_lhs`.
#[derive(Copy, Clone, Debug)]
#[repr(C)]
struct CompactRow {
    card: f64,
    cost: f32,
    best_lhs: u32,
}

impl Default for CompactRow {
    fn default() -> Self {
        CompactRow { card: 0.0, cost: f32::INFINITY, best_lhs: 0 }
    }
}

/// The paper's exact 16-byte-per-row table for **Cartesian product**
/// optimization: no `Π_fan` column, no cost-model memo.
///
/// Only usable where those columns are never needed — i.e. with
/// [`crate::cartesian`] under cost models with `HAS_AUX == false`.
/// `pi_fan` reads return the neutral 1.0 and writes of the neutral value
/// are accepted (singleton initialization writes 1.0); any other use
/// panics rather than silently corrupting an optimization.
pub struct CompactProductTable {
    n: usize,
    rows: Vec<CompactRow>,
}

impl TableLayout for CompactProductTable {
    // See `AosTable`: hints are real only on prefetch-capable targets.
    const PREFETCHES: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

    fn with_rels(n: usize) -> Self {
        check_rels(n);
        CompactProductTable { n, rows: vec![CompactRow::default(); 1usize << n] }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.rows[s.index()].card
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.rows[s.index()].card = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.rows[s.index()].cost
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.rows[s.index()].cost = v;
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.rows[s.index()].best_lhs)
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.rows[s.index()].best_lhs = v.bits();
    }

    #[inline]
    fn pi_fan(&self, _s: RelSet) -> f64 {
        1.0
    }

    #[inline]
    fn set_pi_fan(&mut self, _s: RelSet, v: f64) {
        assert!(v == 1.0, "CompactProductTable has no Π_fan column (products only)");
    }

    #[inline]
    fn aux(&self, _s: RelSet) -> f32 {
        0.0
    }

    #[inline]
    fn set_aux(&mut self, _s: RelSet, v: f32) {
        assert!(v == 0.0, "CompactProductTable has no aux column");
    }

    #[inline]
    fn prefetch_cost(&self, s: RelSet) {
        if let Some(row) = self.rows.get(s.index()) {
            prefetch_read(&row.cost);
        }
    }
}

/// Dense, 64-byte-aligned `f32` buffer for [`HotColdTable`]'s hot
/// `cost` column.
///
/// `Vec<f32>` only guarantees 4-byte alignment; aligning the base to a
/// cache-line boundary makes row-index arithmetic line arithmetic too
/// (16 costs per 64-byte line, no straddling), which is what lets the
/// chunked wave scheduler hand workers line-disjoint runs of the hot
/// array.
struct AlignedCosts {
    ptr: std::ptr::NonNull<f32>,
    len: usize,
}

/// Alignment of the hot cost buffer: one x86/aarch64 cache line.
const COST_ALIGN: usize = 64;

impl AlignedCosts {
    /// Allocate `len` costs, all initialized to `+∞` (the table's "no
    /// plan found" sentinel).
    fn new_infinite(len: usize) -> AlignedCosts {
        assert!(len > 0 && len <= isize::MAX as usize / 4);
        let layout = std::alloc::Layout::from_size_align(len * 4, COST_ALIGN)
            .expect("cost buffer layout");
        // SAFETY: `layout` has nonzero size; allocation failure aborts
        // via `handle_alloc_error`; every element is initialized below
        // before the buffer is readable through safe accessors.
        let ptr = unsafe {
            let p = std::alloc::alloc(layout) as *mut f32;
            let Some(nn) = std::ptr::NonNull::new(p) else {
                std::alloc::handle_alloc_error(layout);
            };
            for i in 0..len {
                nn.as_ptr().add(i).write(f32::INFINITY);
            }
            nn
        };
        AlignedCosts { ptr, len }
    }

    #[inline]
    fn get(&self, i: usize) -> f32 {
        assert!(i < self.len);
        // SAFETY: in-bounds index into an initialized, owned buffer.
        unsafe { *self.ptr.as_ptr().add(i) }
    }

    #[inline]
    fn set(&mut self, i: usize, v: f32) {
        assert!(i < self.len);
        // SAFETY: in-bounds index into an owned buffer, under `&mut`.
        unsafe { *self.ptr.as_ptr().add(i) = v }
    }

    #[inline]
    fn as_mut_ptr(&mut self) -> *mut f32 {
        self.ptr.as_ptr()
    }
}

impl Drop for AlignedCosts {
    fn drop(&mut self) {
        // SAFETY: same layout as the allocation in `new_infinite`.
        unsafe {
            let layout =
                std::alloc::Layout::from_size_align_unchecked(self.len * 4, COST_ALIGN);
            std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, layout);
        }
    }
}

// SAFETY: `AlignedCosts` uniquely owns its heap buffer of plain `f32`s
// (no interior mutability, no shared state), exactly like `Vec<f32>`.
unsafe impl Send for AlignedCosts {}
// SAFETY: `&AlignedCosts` exposes only reads of plain data.
unsafe impl Sync for AlignedCosts {}

/// Hot/cold split table layout.
///
/// The nested-`if` pruning cascade in `find_best_split` resolves the
/// overwhelming majority of splits on the first one or two tests —
/// `lhs_cost < best`, then `lhs_cost + rhs_cost < best` — which need
/// only the 4-byte `cost` field of each operand row. Under [`AosTable`]
/// every such probe drags a full 32-byte row through the cache (half a
/// line); under [`SoaTable`] the cost lane is dense but shares the
/// allocator's whims with four sibling columns. `HotColdTable` gives the
/// `cost` column its own dense, 64-byte-aligned buffer — 16 probes per
/// cache line — and exiles `card`/`Π_fan`/`aux`/`best_lhs` to cold
/// arrays touched only on the rare `κ''` evaluation and the per-row
/// write path. Field semantics are identical to the other layouts, so
/// tables are cost-bit-identical across all of them.
pub struct HotColdTable {
    n: usize,
    /// Hot: the pruning cascade reads only this.
    costs: AlignedCosts,
    /// Cold: read only when a split survives to the `κ''` test
    /// (`card`, `aux`) or after the row is final (`best_lhs`, `pi_fan`).
    cards: Vec<f64>,
    pi_fans: Vec<f64>,
    best_lhss: Vec<u32>,
    auxs: Vec<f32>,
}

impl TableLayout for HotColdTable {
    // See `AosTable`: hints are real only on prefetch-capable targets.
    const PREFETCHES: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

    fn with_rels(n: usize) -> Self {
        check_rels(n);
        let cap = 1usize << n;
        HotColdTable {
            n,
            costs: AlignedCosts::new_infinite(cap),
            cards: vec![0.0; cap],
            pi_fans: vec![1.0; cap],
            best_lhss: vec![0; cap],
            auxs: vec![0.0; cap],
        }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.cards[s.index()]
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.cards[s.index()] = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.costs.get(s.index())
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.costs.set(s.index(), v);
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.best_lhss[s.index()])
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.best_lhss[s.index()] = v.bits();
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        self.pi_fans[s.index()]
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        self.pi_fans[s.index()] = v;
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        self.auxs[s.index()]
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        self.auxs[s.index()] = v;
    }

    #[inline]
    fn prefetch_cost(&self, s: RelSet) {
        if s.index() < self.costs.len {
            // SAFETY: in-bounds pointer arithmetic; the address is only
            // used as a prefetch hint, never dereferenced.
            prefetch_read(unsafe { self.costs.ptr.as_ptr().add(s.index()) });
        }
    }

    // SAFETY: (implementor-side guarantee) the aligned buffer holds
    // exactly `1 << n` initialized `f32`s and is never reallocated, so
    // its base pointer is valid for the whole column while `self` is
    // borrowed.
    #[inline]
    unsafe fn cost_base(&self) -> Option<*const f32> {
        Some(self.costs.ptr.as_ptr())
    }
}

/// Raw per-row access to a layout's buffers, for the rank-wave parallel
/// driver. Implemented by each concrete layout.
///
/// Worker threads must all access the shared table, but materializing a
/// `&mut L` (or even `&L`) to the *whole* table while another thread
/// holds one is undefined behavior: an exclusive reference asserts
/// alias-freedom over every byte it covers — not just the bytes actually
/// touched — so "the written rows are disjoint" is no defense under
/// Rust's aliasing rules (Stacked/Tree Borrows). The parallel view
/// therefore never forms a reference into the table at all:
/// [`raw_parts`](WaveTableLayout::raw_parts) captures the buffer base
/// pointers once, under the caller's still-live exclusive borrow, and
/// every accessor below performs a single in-bounds *element* read or
/// write through those raw pointers.
///
/// # Safety
///
/// The implementor contract:
///
/// * `raw_parts` must return pointers into `self`'s own heap buffers,
///   valid for element access at every in-bounds row index for as long
///   as the exclusive borrow it was called under lives.
/// * Every accessor must be a raw-pointer element access; it must not
///   create a reference to the table or to a whole buffer. (A reference
///   to the single addressed element would also be sound — disjoint rows
///   never alias — but plain pointer reads/writes are used throughout.)
/// * Accessors must preserve the exact semantics of the corresponding
///   [`TableLayout`] methods (including panics on unsupported columns),
///   so serial and parallel drivers stay bit-identical.
pub unsafe trait WaveTableLayout: TableLayout {
    /// Copyable bundle of raw buffer base pointers plus the table's `n`.
    type Raw: Copy;

    /// Capture the raw buffer pointers under an exclusive borrow.
    fn raw_parts(&mut self) -> Self::Raw;

    /// Relation count recorded in `raw` (plain data, always safe).
    fn raw_rels(raw: Self::Raw) -> usize;

    /// Read the `card` field of row `s`.
    ///
    /// # Safety
    /// For this and every accessor below: `raw` must come from
    /// [`raw_parts`](WaveTableLayout::raw_parts) on a table whose
    /// exclusive borrow is still live, `s` must be in bounds for that
    /// table, and the access must not overlap in time with an access to
    /// the same row from another thread of which at least one is a write
    /// (the rank-wave discipline — see [`SyncTable`]).
    unsafe fn raw_card(raw: Self::Raw, s: RelSet) -> f64;
    /// Write the `card` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_set_card(raw: Self::Raw, s: RelSet, v: f64);
    /// Read the `cost` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_cost(raw: Self::Raw, s: RelSet) -> f32;
    /// Write the `cost` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_set_cost(raw: Self::Raw, s: RelSet, v: f32);
    /// Read the `best_lhs` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_best_lhs(raw: Self::Raw, s: RelSet) -> RelSet;
    /// Write the `best_lhs` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_set_best_lhs(raw: Self::Raw, s: RelSet, v: RelSet);
    /// Read the `Π_fan` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_pi_fan(raw: Self::Raw, s: RelSet) -> f64;
    /// Write the `Π_fan` field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_set_pi_fan(raw: Self::Raw, s: RelSet, v: f64);
    /// Read the cost-model memo field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_aux(raw: Self::Raw, s: RelSet) -> f32;
    /// Write the cost-model memo field of row `s`.
    /// # Safety
    /// See [`WaveTableLayout::raw_card`].
    unsafe fn raw_set_aux(raw: Self::Raw, s: RelSet, v: f32);

    /// Advisory prefetch of the `cost` field of row `s` (see
    /// [`TableLayout::prefetch_cost`]). Prefetches are hints, not memory
    /// accesses, so this needs no race-freedom clause; the default does
    /// nothing.
    ///
    /// # Safety
    /// `raw` must come from [`raw_parts`](WaveTableLayout::raw_parts) on
    /// a table whose exclusive borrow is still live, and `s` must be in
    /// bounds for that table (the pointer arithmetic must stay inside
    /// the buffer).
    #[inline]
    unsafe fn raw_prefetch_cost(_raw: Self::Raw, _s: RelSet) {}

    /// Base pointer of the dense `cost` column captured in `raw`, if the
    /// layout has one (see [`TableLayout::cost_base`]); `None` — the
    /// default — otherwise. Returning the pointer is safe; *reads*
    /// through it fall under this `unsafe trait`'s implementor contract:
    /// `Some(p)` guarantees `p` addresses `1 << raw_rels(raw)`
    /// consecutive `f32`s valid exactly as long, and under the same
    /// wave discipline, as [`raw_cost`](WaveTableLayout::raw_cost)
    /// reads.
    #[inline]
    fn raw_cost_base(_raw: Self::Raw) -> Option<*const f32> {
        None
    }
}

/// Raw parts of an [`AosTable`]: the row-array base pointer.
#[derive(Copy, Clone)]
pub struct AosRaw {
    n: usize,
    rows: *mut Row,
}

// SAFETY: the pointer is only dereferenced under the `WaveTableLayout`
// accessor contract (live borrow, in-bounds row, race-free), which is
// thread-agnostic; `Row` is plain `Copy` data.
unsafe impl Send for AosRaw {}

// SAFETY: `raw_parts` snapshots the `Vec`'s buffer pointer under `&mut
// self`; the buffer is never reallocated while that borrow lives, and
// every accessor is a single `ptr::add` + field read/write — no
// reference to the table or the buffer is ever formed.
unsafe impl WaveTableLayout for AosTable {
    type Raw = AosRaw;

    fn raw_parts(&mut self) -> AosRaw {
        AosRaw { n: self.n, rows: self.rows.as_mut_ptr() }
    }

    #[inline]
    fn raw_rels(raw: AosRaw) -> usize {
        raw.n
    }

    #[inline]
    unsafe fn raw_card(raw: AosRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_card` caller contract.
        unsafe { (*raw.rows.add(s.index())).card }
    }

    #[inline]
    unsafe fn raw_set_card(raw: AosRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_card` caller contract.
        unsafe { (*raw.rows.add(s.index())).card = v }
    }

    #[inline]
    unsafe fn raw_cost(raw: AosRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_cost` caller contract.
        unsafe { (*raw.rows.add(s.index())).cost }
    }

    #[inline]
    unsafe fn raw_set_cost(raw: AosRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_cost` caller contract.
        unsafe { (*raw.rows.add(s.index())).cost = v }
    }

    #[inline]
    unsafe fn raw_best_lhs(raw: AosRaw, s: RelSet) -> RelSet {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_best_lhs` caller contract.
        RelSet::from_bits(unsafe { (*raw.rows.add(s.index())).best_lhs })
    }

    #[inline]
    unsafe fn raw_set_best_lhs(raw: AosRaw, s: RelSet, v: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_best_lhs` caller contract.
        unsafe { (*raw.rows.add(s.index())).best_lhs = v.bits() }
    }

    #[inline]
    unsafe fn raw_pi_fan(raw: AosRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_pi_fan` caller contract.
        unsafe { (*raw.rows.add(s.index())).pi_fan }
    }

    #[inline]
    unsafe fn raw_set_pi_fan(raw: AosRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_pi_fan` caller contract.
        unsafe { (*raw.rows.add(s.index())).pi_fan = v }
    }

    #[inline]
    unsafe fn raw_aux(raw: AosRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_aux` caller contract.
        unsafe { (*raw.rows.add(s.index())).aux }
    }

    #[inline]
    unsafe fn raw_set_aux(raw: AosRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_aux` caller contract.
        unsafe { (*raw.rows.add(s.index())).aux = v }
    }

    #[inline]
    unsafe fn raw_prefetch_cost(raw: AosRaw, s: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: in-bounds pointer arithmetic per the `raw_prefetch_cost`
        // contract; the address is only used as a prefetch hint.
        unsafe { prefetch_read(std::ptr::addr_of!((*raw.rows.add(s.index())).cost)) }
    }
}

/// Raw parts of a [`SoaTable`]: one base pointer per column.
#[derive(Copy, Clone)]
pub struct SoaRaw {
    n: usize,
    cards: *mut f64,
    pi_fans: *mut f64,
    costs: *mut f32,
    best_lhss: *mut u32,
    auxs: *mut f32,
}

// SAFETY: as for `AosRaw` — dereferenced only under the accessor
// contract; all columns are plain `Copy` data.
unsafe impl Send for SoaRaw {}

// SAFETY: as for `AosTable` — pointer snapshots under `&mut self`,
// per-element access only, no references formed.
unsafe impl WaveTableLayout for SoaTable {
    type Raw = SoaRaw;

    fn raw_parts(&mut self) -> SoaRaw {
        SoaRaw {
            n: self.n,
            cards: self.cards.as_mut_ptr(),
            pi_fans: self.pi_fans.as_mut_ptr(),
            costs: self.costs.as_mut_ptr(),
            best_lhss: self.best_lhss.as_mut_ptr(),
            auxs: self.auxs.as_mut_ptr(),
        }
    }

    #[inline]
    fn raw_rels(raw: SoaRaw) -> usize {
        raw.n
    }

    #[inline]
    unsafe fn raw_card(raw: SoaRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_card` caller contract.
        unsafe { *raw.cards.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_card(raw: SoaRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_card` caller contract.
        unsafe { *raw.cards.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_cost(raw: SoaRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_cost` caller contract.
        unsafe { *raw.costs.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_cost(raw: SoaRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_cost` caller contract.
        unsafe { *raw.costs.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_best_lhs(raw: SoaRaw, s: RelSet) -> RelSet {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_best_lhs` caller contract.
        RelSet::from_bits(unsafe { *raw.best_lhss.add(s.index()) })
    }

    #[inline]
    unsafe fn raw_set_best_lhs(raw: SoaRaw, s: RelSet, v: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_best_lhs` caller contract.
        unsafe { *raw.best_lhss.add(s.index()) = v.bits() }
    }

    #[inline]
    unsafe fn raw_pi_fan(raw: SoaRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_pi_fan` caller contract.
        unsafe { *raw.pi_fans.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_pi_fan(raw: SoaRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_pi_fan` caller contract.
        unsafe { *raw.pi_fans.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_aux(raw: SoaRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_aux` caller contract.
        unsafe { *raw.auxs.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_aux(raw: SoaRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_aux` caller contract.
        unsafe { *raw.auxs.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_prefetch_cost(raw: SoaRaw, s: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: in-bounds pointer arithmetic per the `raw_prefetch_cost`
        // contract; the address is only used as a prefetch hint.
        unsafe { prefetch_read(raw.costs.add(s.index())) }
    }

    #[inline]
    fn raw_cost_base(raw: SoaRaw) -> Option<*const f32> {
        // The dense cost column's base; the `raw_cost_base` implementor
        // contract (extent, lifetime, wave discipline) is met because
        // `raw.costs` is the same pointer `raw_cost` reads through.
        Some(raw.costs as *const f32)
    }
}

/// Raw parts of a [`CompactProductTable`]: the 16-byte-row base pointer.
#[derive(Copy, Clone)]
pub struct CompactRaw {
    n: usize,
    rows: *mut CompactRow,
}

// SAFETY: as for `AosRaw`.
unsafe impl Send for CompactRaw {}

// SAFETY: as for `AosTable`; the missing `Π_fan`/`aux` columns keep the
// `TableLayout` impl's exact semantics (neutral reads, panic on
// non-neutral writes).
unsafe impl WaveTableLayout for CompactProductTable {
    type Raw = CompactRaw;

    fn raw_parts(&mut self) -> CompactRaw {
        CompactRaw { n: self.n, rows: self.rows.as_mut_ptr() }
    }

    #[inline]
    fn raw_rels(raw: CompactRaw) -> usize {
        raw.n
    }

    #[inline]
    unsafe fn raw_card(raw: CompactRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_card` caller contract.
        unsafe { (*raw.rows.add(s.index())).card }
    }

    #[inline]
    unsafe fn raw_set_card(raw: CompactRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_card` caller contract.
        unsafe { (*raw.rows.add(s.index())).card = v }
    }

    #[inline]
    unsafe fn raw_cost(raw: CompactRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_cost` caller contract.
        unsafe { (*raw.rows.add(s.index())).cost }
    }

    #[inline]
    unsafe fn raw_set_cost(raw: CompactRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_cost` caller contract.
        unsafe { (*raw.rows.add(s.index())).cost = v }
    }

    #[inline]
    unsafe fn raw_best_lhs(raw: CompactRaw, s: RelSet) -> RelSet {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_best_lhs` caller contract.
        RelSet::from_bits(unsafe { (*raw.rows.add(s.index())).best_lhs })
    }

    #[inline]
    unsafe fn raw_set_best_lhs(raw: CompactRaw, s: RelSet, v: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_best_lhs` caller contract.
        unsafe { (*raw.rows.add(s.index())).best_lhs = v.bits() }
    }

    #[inline]
    unsafe fn raw_pi_fan(_raw: CompactRaw, _s: RelSet) -> f64 {
        1.0
    }

    #[inline]
    unsafe fn raw_set_pi_fan(_raw: CompactRaw, _s: RelSet, v: f64) {
        assert!(v == 1.0, "CompactProductTable has no Π_fan column (products only)");
    }

    #[inline]
    unsafe fn raw_aux(_raw: CompactRaw, _s: RelSet) -> f32 {
        0.0
    }

    #[inline]
    unsafe fn raw_set_aux(_raw: CompactRaw, _s: RelSet, v: f32) {
        assert!(v == 0.0, "CompactProductTable has no aux column");
    }

    #[inline]
    unsafe fn raw_prefetch_cost(raw: CompactRaw, s: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: in-bounds pointer arithmetic per the `raw_prefetch_cost`
        // contract; the address is only used as a prefetch hint.
        unsafe { prefetch_read(std::ptr::addr_of!((*raw.rows.add(s.index())).cost)) }
    }
}

/// Raw parts of a [`HotColdTable`]: the hot cost base pointer plus one
/// base pointer per cold column.
#[derive(Copy, Clone)]
pub struct HotColdRaw {
    n: usize,
    costs: *mut f32,
    cards: *mut f64,
    pi_fans: *mut f64,
    best_lhss: *mut u32,
    auxs: *mut f32,
}

// SAFETY: as for `AosRaw` — dereferenced only under the accessor
// contract; all columns are plain `Copy` data.
unsafe impl Send for HotColdRaw {}

// SAFETY: as for `AosTable` — pointer snapshots under `&mut self`
// (neither the aligned cost buffer nor the cold `Vec`s reallocate while
// that borrow lives), per-element access only, no references formed.
unsafe impl WaveTableLayout for HotColdTable {
    type Raw = HotColdRaw;

    fn raw_parts(&mut self) -> HotColdRaw {
        HotColdRaw {
            n: self.n,
            costs: self.costs.as_mut_ptr(),
            cards: self.cards.as_mut_ptr(),
            pi_fans: self.pi_fans.as_mut_ptr(),
            best_lhss: self.best_lhss.as_mut_ptr(),
            auxs: self.auxs.as_mut_ptr(),
        }
    }

    #[inline]
    fn raw_rels(raw: HotColdRaw) -> usize {
        raw.n
    }

    #[inline]
    unsafe fn raw_card(raw: HotColdRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_card` caller contract.
        unsafe { *raw.cards.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_card(raw: HotColdRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_card` caller contract.
        unsafe { *raw.cards.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_cost(raw: HotColdRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_cost` caller contract.
        unsafe { *raw.costs.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_cost(raw: HotColdRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_cost` caller contract.
        unsafe { *raw.costs.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_best_lhs(raw: HotColdRaw, s: RelSet) -> RelSet {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_best_lhs` caller contract.
        RelSet::from_bits(unsafe { *raw.best_lhss.add(s.index()) })
    }

    #[inline]
    unsafe fn raw_set_best_lhs(raw: HotColdRaw, s: RelSet, v: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_best_lhs` caller contract.
        unsafe { *raw.best_lhss.add(s.index()) = v.bits() }
    }

    #[inline]
    unsafe fn raw_pi_fan(raw: HotColdRaw, s: RelSet) -> f64 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_pi_fan` caller contract.
        unsafe { *raw.pi_fans.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_pi_fan(raw: HotColdRaw, s: RelSet, v: f64) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_pi_fan` caller contract.
        unsafe { *raw.pi_fans.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_aux(raw: HotColdRaw, s: RelSet) -> f32 {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_aux` caller contract.
        unsafe { *raw.auxs.add(s.index()) }
    }

    #[inline]
    unsafe fn raw_set_aux(raw: HotColdRaw, s: RelSet, v: f32) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: the `raw_set_aux` caller contract.
        unsafe { *raw.auxs.add(s.index()) = v }
    }

    #[inline]
    unsafe fn raw_prefetch_cost(raw: HotColdRaw, s: RelSet) {
        debug_assert!(s.index() < (1usize << raw.n));
        // SAFETY: in-bounds pointer arithmetic per the `raw_prefetch_cost`
        // contract; the address is only used as a prefetch hint.
        unsafe { prefetch_read(raw.costs.add(s.index())) }
    }

    #[inline]
    fn raw_cost_base(raw: HotColdRaw) -> Option<*const f32> {
        // The dense hot array's base; the `raw_cost_base` implementor
        // contract (extent, lifetime, wave discipline) is met because
        // `raw.costs` is the same pointer `raw_cost` reads through.
        Some(raw.costs as *const f32)
    }
}

/// Shared-table handle for the rank-wave parallel driver: lets several
/// worker threads hold mutable views of one table at the same time.
///
/// # Why this is sound
///
/// Two hazards must be ruled out: **data races** and **reference
/// aliasing**.
///
/// *Data races.* The rank-wave driver processes subsets in waves by
/// cardinality (popcount). Every table access made while filling the row
/// for a set `S` with `|S| = k` falls into one of two classes:
///
/// * **writes** to the row of `S` itself (`set_card`/`set_cost`/
///   `set_best_lhs`/`set_pi_fan`/`set_aux`), and
/// * **reads** of rows of *strict subsets* of `S`, all of which have
///   popcount `< k` (operand costs/cards in `find_best_split`, the
///   fan-recurrence lookups in `compute_properties`).
///
/// Within one wave each row is assigned to exactly one worker, so all
/// concurrent writes target pairwise-disjoint rows; all concurrent reads
/// target rows of earlier waves, which no thread writes anymore. A
/// barrier between waves establishes the happens-before edge from the
/// wave-`k` writes to the wave-`k+1` reads. Hence no memory location is
/// ever accessed concurrently by a writer and anyone else: the program
/// is data-race free even though the borrow checker cannot see it.
///
/// *Reference aliasing.* Race freedom is necessary but not sufficient:
/// materializing a `&mut L` to the whole table on two threads — even to
/// write disjoint rows — would be undefined behavior by itself, because
/// exclusive references assert alias-freedom over all bytes they cover.
/// So the parallel path never forms a reference into the table at all:
/// [`SyncTable::from_mut`] captures raw buffer base pointers via
/// [`WaveTableLayout::raw_parts`] while it holds the table `&mut` (and
/// its `PhantomData` borrow keeps that exclusive borrow alive for the
/// handle's whole lifetime, so nothing else can touch the table), and
/// every [`SyncTableView`] accessor is a per-element raw-pointer read or
/// write. Raw pointers carry no aliasing claims, so with the race
/// freedom above each access is a plain, uncontended memory operation —
/// sound under Stacked/Tree Borrows, not merely under the data-race
/// rules.
pub struct SyncTable<'t, L: WaveTableLayout> {
    raw: L::Raw,
    /// Shadow epoch/owner words validating every view access against the
    /// wave discipline (`--cfg blitz_check` builds only). Boxed so the
    /// views' pointer to it survives moves of the handle itself.
    #[cfg(blitz_check)]
    shadow: Box<crate::check::ShadowState>,
    /// Keeps the source table exclusively borrowed while views exist.
    _borrow: PhantomData<&'t mut L>,
}

// SAFETY: sharing a `&SyncTable` across threads only exposes `view()`,
// whose contract forbids conflicting concurrent accesses; the underlying
// row data is plain data owned by the (`Send`) borrowed table.
unsafe impl<L: WaveTableLayout + Send> Sync for SyncTable<'_, L> {}

impl<'t, L: WaveTableLayout> SyncTable<'t, L> {
    /// Wrap an exclusively borrowed table for the duration of a wave
    /// computation, capturing its raw buffer pointers.
    pub fn from_mut(table: &'t mut L) -> SyncTable<'t, L> {
        #[cfg(blitz_check)]
        let shadow = Box::new(crate::check::ShadowState::new(table.rels()));
        SyncTable {
            raw: table.raw_parts(),
            #[cfg(blitz_check)]
            shadow,
            _borrow: PhantomData,
        }
    }

    /// Create one worker's mutable view of the shared table.
    ///
    /// # Safety
    ///
    /// Callers must uphold the rank-wave discipline documented on
    /// [`SyncTable`]: while any two views are live on different threads,
    /// each table row is written by at most one of them, and rows read by
    /// one view are never written by another without an intervening
    /// synchronization point (barrier/join).
    ///
    /// Under `--cfg blitz_check` this discipline is additionally
    /// *enforced*: each view gets a worker id, and once the driver calls
    /// [`SyncTableView::begin_wave`], every access is validated against
    /// the shared shadow table — violations panic instead of silently
    /// racing.
    pub unsafe fn view(&self) -> SyncTableView<L> {
        SyncTableView {
            raw: self.raw,
            #[cfg(all(debug_assertions, not(blitz_check)))]
            guard: crate::check::WaveGuard::unconstrained(),
            #[cfg(blitz_check)]
            guard: crate::check::WaveGuard::unconstrained(&self.shadow),
        }
    }
}

/// One worker's view into a [`SyncTable`]; implements [`TableLayout`] by
/// forwarding every accessor to the layout's [`WaveTableLayout`] raw
/// element accessors, so the generic `find_best_split`/
/// `compute_properties` code runs on it unchanged — without ever forming
/// a reference to the shared table.
///
/// Cannot be allocated directly: [`TableLayout::with_rels`] panics.
pub struct SyncTableView<L: WaveTableLayout> {
    raw: L::Raw,
    /// Wave/chunk bookkeeping validating accesses in checked builds
    /// (plain `debug_assertions`: write-side popcount/chunk assertions;
    /// `--cfg blitz_check`: the full shadow epoch/owner protocol).
    #[cfg(any(blitz_check, debug_assertions))]
    guard: crate::check::WaveGuard,
}

impl<L: WaveTableLayout> SyncTableView<L> {
    /// Tell the view which wave it is about to process, and (for the
    /// chunked schedule) which colex rank range `[lo, hi)` of that wave
    /// this worker owns. The wave drivers call this at the top of every
    /// wave; in ordinary release builds it compiles to nothing, while
    /// checked builds use it to validate every subsequent access against
    /// the rank-wave discipline.
    #[inline]
    pub fn begin_wave(&mut self, k: usize, chunk: Option<(u64, u64)>) {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.begin_wave(k, chunk);
        #[cfg(not(any(blitz_check, debug_assertions)))]
        let _ = (k, chunk);
    }
}

// SAFETY: the view is a bundle of raw pointers; moving it to another
// thread is safe because all *accesses* through it are covered by the
// `SyncTable::view` contract (no conflicting concurrent accesses), and
// `L: Send` permits the underlying data to be manipulated from another
// thread.
unsafe impl<L: WaveTableLayout + Send> Send for SyncTableView<L> {}

impl<L: WaveTableLayout> TableLayout for SyncTableView<L> {
    // Prefetch capability is a property of the underlying layout.
    const PREFETCHES: bool = L::PREFETCHES;

    fn with_rels(_n: usize) -> Self {
        unreachable!("SyncTableView is a borrowed view; allocate the underlying layout instead")
    }

    // The safety argument for every forwarded call below: `raw` was
    // captured by a `SyncTable` whose exclusive borrow of the table
    // outlives this view (`SyncTable::view`'s contract), the drivers
    // derive every `s` from the table's own `n` so the row is in bounds,
    // and the view contract rules out concurrent conflicting accesses to
    // that row. Checked builds verify the access against the wave guard
    // *before* touching memory, so a discipline violation panics instead
    // of performing the racy access.
    #[inline]
    fn rels(&self) -> usize {
        L::raw_rels(self.raw)
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_read(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_card(self.raw, s) }
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_write(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_set_card(self.raw, s, v) }
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_read(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_cost(self.raw, s) }
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_write(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_set_cost(self.raw, s, v) }
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_read(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_best_lhs(self.raw, s) }
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_write(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_set_best_lhs(self.raw, s, v) }
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_read(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_pi_fan(self.raw, s) }
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_write(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_set_pi_fan(self.raw, s, v) }
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_read(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_aux(self.raw, s) }
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        #[cfg(any(blitz_check, debug_assertions))]
        self.guard.check_write(s);
        // SAFETY: live borrow, in-bounds row, race-free (see above).
        unsafe { L::raw_set_aux(self.raw, s, v) }
    }

    #[inline]
    fn prefetch_cost(&self, s: RelSet) {
        // Not guard-checked: prefetches are architectural hints, not
        // memory accesses (see `prefetch_read`), and the split loop
        // legitimately prefetches rows ahead of the guard's wave window.
        // SAFETY: live borrow and in-bounds row (see above); prefetch
        // needs no race-freedom clause.
        unsafe { L::raw_prefetch_cost(self.raw, s) }
    }

    // SAFETY: (implementor-side guarantee) forwarded from the layout's
    // `raw_cost_base`, whose extent/lifetime/discipline contract
    // matches this view's `cost()` reads.
    #[inline]
    unsafe fn cost_base(&self) -> Option<*const f32> {
        // Under the shadow checker, decline the dense column on purpose:
        // the batched kernels then read every cost through the
        // guard-checked `cost()` accessor above, so the wave discipline
        // stays machine-enforced for the batched access pattern too.
        #[cfg(blitz_check)]
        {
            None
        }
        #[cfg(not(blitz_check))]
        {
            L::raw_cost_base(self.raw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<L: TableLayout>() {
        let mut t = L::with_rels(4);
        assert_eq!(t.rels(), 4);
        let s = RelSet::from_bits(0b1011);
        t.set_card(s, 600.0);
        t.set_cost(s, 42.5);
        t.set_best_lhs(s, RelSet::from_bits(0b0011));
        t.set_pi_fan(s, 0.125);
        t.set_aux(s, 7.0);
        assert_eq!(t.card(s), 600.0);
        assert_eq!(t.cost(s), 42.5);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0011));
        assert_eq!(t.pi_fan(s), 0.125);
        assert_eq!(t.aux(s), 7.0);
        // Other rows untouched.
        let other = RelSet::from_bits(0b0111);
        assert_eq!(t.card(other), 0.0);
        assert!(t.cost(other).is_infinite());
        assert_eq!(t.pi_fan(other), 1.0);
    }

    #[test]
    fn aos_roundtrip() {
        roundtrip::<AosTable>();
    }

    #[test]
    fn soa_roundtrip() {
        roundtrip::<SoaTable>();
    }

    #[test]
    fn hotcold_roundtrip() {
        roundtrip::<HotColdTable>();
    }

    #[test]
    fn hotcold_cost_buffer_is_cache_line_aligned() {
        for n in [1usize, 4, 8] {
            let t = HotColdTable::with_rels(n);
            assert_eq!(t.costs.ptr.as_ptr() as usize % COST_ALIGN, 0, "n={n}");
            assert_eq!(t.costs.len, 1 << n);
        }
    }

    #[test]
    fn hotcold_defaults_match_other_layouts() {
        let t = HotColdTable::with_rels(3);
        for bits in 1u32..8 {
            let s = RelSet::from_bits(bits);
            assert!(t.cost(s).is_infinite());
            assert_eq!(t.card(s), 0.0);
            assert_eq!(t.pi_fan(s), 1.0);
            assert_eq!(t.aux(s), 0.0);
            assert_eq!(t.best_lhs(s), RelSet::EMPTY);
        }
    }

    #[test]
    fn hotcold_sync_view_forwards() {
        let mut t = HotColdTable::with_rels(4);
        {
            let shared = SyncTable::from_mut(&mut t);
            // SAFETY: single-threaded use trivially satisfies the wave
            // discipline.
            let mut view = unsafe { shared.view() };
            let s = RelSet::from_bits(0b1010);
            view.set_card(s, 44.0);
            view.set_cost(s, 3.25);
            view.set_pi_fan(s, 0.5);
            view.set_aux(s, 1.5);
            view.set_best_lhs(s, RelSet::from_bits(0b0010));
            view.prefetch_cost(s); // hint only; must be harmless
            assert_eq!(view.cost(s), 3.25);
        }
        let s = RelSet::from_bits(0b1010);
        assert_eq!(t.card(s), 44.0);
        assert_eq!(t.cost(s), 3.25);
        assert_eq!(t.pi_fan(s), 0.5);
        assert_eq!(t.aux(s), 1.5);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0010));
    }

    #[test]
    fn prefetch_cost_tolerates_any_set() {
        // Prefetch is advisory: in-bounds sets prefetch, out-of-range
        // sets (possible on the safe `TableLayout` surface) are ignored.
        let t = AosTable::with_rels(3);
        t.prefetch_cost(RelSet::from_bits(0b101));
        t.prefetch_cost(RelSet::from_bits(u32::MAX));
        let t = HotColdTable::with_rels(3);
        t.prefetch_cost(RelSet::from_bits(0b101));
        t.prefetch_cost(RelSet::from_bits(u32::MAX));
    }

    #[test]
    fn layout_choice_names_roundtrip() {
        for choice in LayoutChoice::ALL {
            assert_eq!(LayoutChoice::parse(choice.name()), Some(choice));
            assert_eq!(format!("{choice}"), choice.name());
        }
        assert_eq!(LayoutChoice::parse("compact"), None);
        assert_eq!(LayoutChoice::default(), LayoutChoice::Aos);
    }

    #[test]
    fn default_cost_is_infinite() {
        let t = AosTable::with_rels(3);
        for bits in 1u32..8 {
            assert!(t.cost(RelSet::from_bits(bits)).is_infinite());
        }
    }

    #[test]
    #[should_panic]
    fn too_many_rels_panics() {
        let _ = AosTable::with_rels(MAX_TABLE_RELS + 1);
    }

    #[test]
    fn row_is_32_bytes() {
        // The paper's product-only row is 16 bytes; ours adds the Π_fan
        // column (8) and the cost-model memo (4+pad). Keep it compact.
        assert_eq!(std::mem::size_of::<Row>(), 32);
    }

    #[test]
    fn compact_row_is_exactly_16_bytes() {
        // Section 4.1's headline number.
        assert_eq!(std::mem::size_of::<CompactRow>(), 16);
    }

    #[test]
    fn compact_table_roundtrips_product_fields() {
        let mut t = CompactProductTable::with_rels(4);
        let s = RelSet::from_bits(0b1011);
        t.set_card(s, 600.0);
        t.set_cost(s, 42.5);
        t.set_best_lhs(s, RelSet::from_bits(0b0011));
        t.set_pi_fan(s, 1.0); // neutral write accepted
        t.set_aux(s, 0.0);
        assert_eq!(t.card(s), 600.0);
        assert_eq!(t.cost(s), 42.5);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0011));
        assert_eq!(t.pi_fan(s), 1.0);
    }

    #[test]
    fn sync_view_forwards_to_backing_table() {
        let mut t = AosTable::with_rels(4);
        {
            let shared = SyncTable::from_mut(&mut t);
            // SAFETY: single-threaded use trivially satisfies the wave
            // discipline (no concurrent views at all).
            let mut view = unsafe { shared.view() };
            assert_eq!(view.rels(), 4);
            let s = RelSet::from_bits(0b0101);
            view.set_card(s, 3.5);
            view.set_cost(s, 9.0);
            view.set_best_lhs(s, RelSet::from_bits(0b0001));
            assert_eq!(view.card(s), 3.5);
        }
        let s = RelSet::from_bits(0b0101);
        assert_eq!(t.card(s), 3.5);
        assert_eq!(t.cost(s), 9.0);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0001));
    }

    #[test]
    fn disjoint_row_writes_from_two_threads() {
        let mut t = AosTable::with_rels(6);
        {
            let shared = SyncTable::from_mut(&mut t);
            std::thread::scope(|scope| {
                for half in 0..2u32 {
                    // SAFETY: the two views write disjoint rows (split by
                    // the low bit of the set index) and read nothing.
                    let mut view = unsafe { shared.view() };
                    scope.spawn(move || {
                        for bits in 1u32..64 {
                            if bits & 1 == half {
                                view.set_cost(RelSet::from_bits(bits), bits as f32);
                            }
                        }
                    });
                }
            });
        }
        for bits in 1u32..64 {
            assert_eq!(t.cost(RelSet::from_bits(bits)), bits as f32);
        }
    }

    #[test]
    fn soa_and_compact_views_forward() {
        let mut t = SoaTable::with_rels(4);
        {
            let shared = SyncTable::from_mut(&mut t);
            // SAFETY: single-threaded use trivially satisfies the wave
            // discipline.
            let mut view = unsafe { shared.view() };
            let s = RelSet::from_bits(0b0110);
            view.set_card(s, 12.0);
            view.set_pi_fan(s, 0.25);
            view.set_aux(s, 2.0);
            assert_eq!(view.pi_fan(s), 0.25);
        }
        let s = RelSet::from_bits(0b0110);
        assert_eq!(t.card(s), 12.0);
        assert_eq!(t.aux(s), 2.0);

        let mut c = CompactProductTable::with_rels(4);
        {
            let shared = SyncTable::from_mut(&mut c);
            // SAFETY: single-threaded use.
            let mut view = unsafe { shared.view() };
            let s = RelSet::from_bits(0b0011);
            view.set_cost(s, 5.0);
            view.set_pi_fan(s, 1.0); // neutral write accepted
            assert_eq!(view.pi_fan(s), 1.0);
        }
        assert_eq!(c.cost(RelSet::from_bits(0b0011)), 5.0);
    }

    /// The wave pattern proper: both threads *read* rows of an earlier,
    /// already-final wave while writing disjoint rows of the current one.
    #[test]
    fn concurrent_prior_wave_reads_with_disjoint_writes() {
        let mut t = AosTable::with_rels(6);
        for rel in 0..6 {
            let s = RelSet::singleton(rel);
            t.set_cost(s, rel as f32);
            t.set_card(s, 1.0);
        }
        {
            let shared = SyncTable::from_mut(&mut t);
            std::thread::scope(|scope| {
                for half in 0..2usize {
                    // SAFETY: writes target disjoint pair rows (split by
                    // the parity of the lower relation index); reads
                    // target singleton rows, which no thread writes.
                    let mut view = unsafe { shared.view() };
                    scope.spawn(move || {
                        for i in 0..6usize {
                            for j in (i + 1)..6usize {
                                if i % 2 == half {
                                    let s = RelSet::singleton(i) | RelSet::singleton(j);
                                    let sum = view.cost(RelSet::singleton(i))
                                        + view.cost(RelSet::singleton(j));
                                    view.set_cost(s, sum);
                                }
                            }
                        }
                    });
                }
            });
        }
        for i in 0..6usize {
            for j in (i + 1)..6usize {
                let s = RelSet::singleton(i) | RelSet::singleton(j);
                assert_eq!(t.cost(s), (i + j) as f32);
            }
        }
    }

    #[test]
    #[should_panic]
    fn compact_table_rejects_fan_writes() {
        let mut t = CompactProductTable::with_rels(3);
        t.set_pi_fan(RelSet::from_bits(0b11), 0.5);
    }
}
