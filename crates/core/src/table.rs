//! The dynamic-programming table (paper Sections 3.2, 4.1 and 5.4).
//!
//! The table has one row per nonempty subset of the `n` relations, indexed
//! by the subset's integer bit-vector representation, for `2^n` slots in
//! all (slot 0, the empty set, is unused). Each row carries:
//!
//! * `card` — the (estimated) cardinality of the intermediate result over
//!   the subset (`f64` for wide dynamic range, per footnote 2);
//! * `cost` — the cost of the best plan found (`f32`; overflow ⇒ `+∞` ⇒
//!   rejected, per Section 6.3);
//! * `best_lhs` — the left-hand side of the best split (bit-vector);
//! * `pi_fan` — the memoized fan selectivity product `Π_fan` (Section 5.4;
//!   join optimization only);
//! * `aux` — an optional cost-model memo (e.g. the sort-merge log term).
//!
//! Two layouts are provided behind the [`TableLayout`] trait so that the
//! benchmark harness can ablate the choice: [`AosTable`] (array of structs,
//! the paper's layout) and [`SoaTable`] (struct of arrays). The optimizer
//! is generic over the layout and monomorphizes both.

use crate::bitset::{RelSet, MAX_RELS};
use std::cell::UnsafeCell;

/// Guard against absurd allocations: `2^28` rows of 32 bytes is 8 GiB.
pub const MAX_TABLE_RELS: usize = 28;

/// Storage for the dynamic-programming table, indexed by [`RelSet`].
///
/// All accessors are expected to be O(1) and inline; they sit inside the
/// optimizer's `O(3^n)` split loop.
pub trait TableLayout {
    /// Allocate a table for `n` relations (`2^n` rows).
    ///
    /// # Panics
    /// Panics if `n > MAX_TABLE_RELS` (or `n > MAX_RELS`).
    fn with_rels(n: usize) -> Self;

    /// Number of relations this table was allocated for.
    fn rels(&self) -> usize;

    /// Estimated cardinality of the set's intermediate result.
    fn card(&self, s: RelSet) -> f64;
    /// Set the cardinality field.
    fn set_card(&mut self, s: RelSet, v: f64);

    /// Cost of the best plan found for the set (`+∞` if none).
    fn cost(&self, s: RelSet) -> f32;
    /// Set the cost field.
    fn set_cost(&mut self, s: RelSet, v: f32);

    /// Left-hand side of the best split (`EMPTY` for singletons).
    fn best_lhs(&self, s: RelSet) -> RelSet;
    /// Set the best-split field.
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet);

    /// Memoized fan selectivity product `Π_fan(S)` (Section 5.3).
    fn pi_fan(&self, s: RelSet) -> f64;
    /// Set the fan product field.
    fn set_pi_fan(&mut self, s: RelSet, v: f64);

    /// Memoized per-set cost-model value (see [`crate::cost::CostModel::aux`]).
    fn aux(&self, s: RelSet) -> f32;
    /// Set the cost-model memo field.
    fn set_aux(&mut self, s: RelSet, v: f32);
}

fn check_rels(n: usize) {
    assert!(n <= MAX_RELS, "{n} relations exceed MAX_RELS = {MAX_RELS}");
    assert!(
        n <= MAX_TABLE_RELS,
        "{n} relations exceed MAX_TABLE_RELS = {MAX_TABLE_RELS} (table would need 2^{n} rows)"
    );
}

/// One row of the array-of-structs layout.
///
/// 32 bytes: the paper's 16-byte product row (`card` + `cost` + `best_lhs`)
/// plus the `Π_fan` column added in Section 5.4 and the cost-model memo.
#[derive(Copy, Clone, Debug)]
#[repr(C)]
struct Row {
    card: f64,
    pi_fan: f64,
    cost: f32,
    best_lhs: u32,
    aux: f32,
    _pad: u32,
}

impl Default for Row {
    fn default() -> Self {
        Row { card: 0.0, pi_fan: 1.0, cost: f32::INFINITY, best_lhs: 0, aux: 0.0, _pad: 0 }
    }
}

/// Array-of-structs table layout — each row's fields are contiguous, as in
/// the paper's C implementation.
pub struct AosTable {
    n: usize,
    rows: Vec<Row>,
}

impl TableLayout for AosTable {
    fn with_rels(n: usize) -> Self {
        check_rels(n);
        AosTable { n, rows: vec![Row::default(); 1usize << n] }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.rows[s.index()].card
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.rows[s.index()].card = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.rows[s.index()].cost
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.rows[s.index()].cost = v;
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.rows[s.index()].best_lhs)
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.rows[s.index()].best_lhs = v.bits();
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        self.rows[s.index()].pi_fan
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        self.rows[s.index()].pi_fan = v;
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        self.rows[s.index()].aux
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        self.rows[s.index()].aux = v;
    }
}

/// Struct-of-arrays table layout — one dense array per column. The split
/// loop touches only `cost` (always) and `card`/`aux` (conditionally), so
/// separating the columns can improve cache residency for large `n`; the
/// ablation bench quantifies this.
pub struct SoaTable {
    n: usize,
    cards: Vec<f64>,
    pi_fans: Vec<f64>,
    costs: Vec<f32>,
    best_lhss: Vec<u32>,
    auxs: Vec<f32>,
}

impl TableLayout for SoaTable {
    fn with_rels(n: usize) -> Self {
        check_rels(n);
        let cap = 1usize << n;
        SoaTable {
            n,
            cards: vec![0.0; cap],
            pi_fans: vec![1.0; cap],
            costs: vec![f32::INFINITY; cap],
            best_lhss: vec![0; cap],
            auxs: vec![0.0; cap],
        }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.cards[s.index()]
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.cards[s.index()] = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.costs[s.index()]
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.costs[s.index()] = v;
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.best_lhss[s.index()])
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.best_lhss[s.index()] = v.bits();
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        self.pi_fans[s.index()]
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        self.pi_fans[s.index()] = v;
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        self.auxs[s.index()]
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        self.auxs[s.index()] = v;
    }
}

/// One row of the paper-exact 16-byte layout (Section 4.1):
///
/// > each row of our dynamic programming table need occupy only 16
/// > bytes: 8 bytes for the real `card`, 4 bytes for the real `cost`,
/// > and 4 bytes for the bit-vector `best_lhs`.
#[derive(Copy, Clone, Debug)]
#[repr(C)]
struct CompactRow {
    card: f64,
    cost: f32,
    best_lhs: u32,
}

impl Default for CompactRow {
    fn default() -> Self {
        CompactRow { card: 0.0, cost: f32::INFINITY, best_lhs: 0 }
    }
}

/// The paper's exact 16-byte-per-row table for **Cartesian product**
/// optimization: no `Π_fan` column, no cost-model memo.
///
/// Only usable where those columns are never needed — i.e. with
/// [`crate::cartesian`] under cost models with `HAS_AUX == false`.
/// `pi_fan` reads return the neutral 1.0 and writes of the neutral value
/// are accepted (singleton initialization writes 1.0); any other use
/// panics rather than silently corrupting an optimization.
pub struct CompactProductTable {
    n: usize,
    rows: Vec<CompactRow>,
}

impl TableLayout for CompactProductTable {
    fn with_rels(n: usize) -> Self {
        check_rels(n);
        CompactProductTable { n, rows: vec![CompactRow::default(); 1usize << n] }
    }

    #[inline]
    fn rels(&self) -> usize {
        self.n
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        self.rows[s.index()].card
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        self.rows[s.index()].card = v;
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        self.rows[s.index()].cost
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        self.rows[s.index()].cost = v;
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        RelSet::from_bits(self.rows[s.index()].best_lhs)
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        self.rows[s.index()].best_lhs = v.bits();
    }

    #[inline]
    fn pi_fan(&self, _s: RelSet) -> f64 {
        1.0
    }

    #[inline]
    fn set_pi_fan(&mut self, _s: RelSet, v: f64) {
        assert!(v == 1.0, "CompactProductTable has no Π_fan column (products only)");
    }

    #[inline]
    fn aux(&self, _s: RelSet) -> f32 {
        0.0
    }

    #[inline]
    fn set_aux(&mut self, _s: RelSet, v: f32) {
        assert!(v == 0.0, "CompactProductTable has no aux column");
    }
}

/// Shared-table wrapper for the rank-wave parallel driver: lets several
/// worker threads hold mutable views of one table at the same time.
///
/// # Why this is sound
///
/// The rank-wave driver processes subsets in waves by cardinality
/// (popcount). Every table access made while filling the row for a set
/// `S` with `|S| = k` falls into one of two classes:
///
/// * **writes** to the row of `S` itself (`set_card`/`set_cost`/
///   `set_best_lhs`/`set_pi_fan`/`set_aux`), and
/// * **reads** of rows of *strict subsets* of `S`, all of which have
///   popcount `< k` (operand costs/cards in `find_best_split`, the
///   fan-recurrence lookups in `compute_properties`).
///
/// Within one wave each row is assigned to exactly one worker, so all
/// concurrent writes target pairwise-disjoint rows; all concurrent reads
/// target rows of earlier waves, which no thread writes anymore. A
/// barrier between waves establishes the happens-before edge from the
/// wave-`k` writes to the wave-`k+1` reads. Hence no memory location is
/// ever accessed concurrently by a writer and anyone else: the program
/// is data-race free even though the borrow checker cannot see it.
///
/// The wrapper is `#[repr(transparent)]` over [`UnsafeCell`] so a
/// `&mut L` can be reinterpreted as `&SyncTable<L>` (the same trick as
/// [`std::cell::Cell::from_mut`]); the exclusive borrow of the caller
/// guarantees nobody else can touch the table while the views exist.
#[repr(transparent)]
pub struct SyncTable<L> {
    inner: UnsafeCell<L>,
}

// SAFETY: `SyncTable` hands out access to `L` across threads only via
// `view()`, whose contract (below) forbids data races; with races ruled
// out, sharing requires no more than `L: Send` (the data itself may move
// between threads' cache views but is never accessed concurrently).
unsafe impl<L: Send> Sync for SyncTable<L> {}

impl<L: TableLayout> SyncTable<L> {
    /// Wrap an exclusively borrowed table for the duration of a wave
    /// computation.
    pub fn from_mut(table: &mut L) -> &SyncTable<L> {
        // SAFETY: `#[repr(transparent)]` guarantees identical layout, and
        // `UnsafeCell<L>` has the same layout as `L`; the returned shared
        // reference inherits the exclusive borrow's lifetime.
        unsafe { &*(table as *mut L as *const SyncTable<L>) }
    }

    /// Create one worker's mutable view of the shared table.
    ///
    /// # Safety
    ///
    /// Callers must uphold the rank-wave discipline documented on
    /// [`SyncTable`]: while any two views are live on different threads,
    /// each table row is written by at most one of them, and rows read by
    /// one view are never written by another without an intervening
    /// synchronization point (barrier/join).
    pub unsafe fn view(&self) -> SyncTableView<L> {
        SyncTableView { table: self.inner.get() }
    }
}

/// One worker's view into a [`SyncTable`]; implements [`TableLayout`] by
/// forwarding every accessor through the shared cell, so the generic
/// `find_best_split`/`compute_properties` code runs on it unchanged.
///
/// Cannot be allocated directly: [`TableLayout::with_rels`] panics.
pub struct SyncTableView<L> {
    table: *mut L,
}

// SAFETY: the view is just a pointer; moving it to another thread is safe
// because all *accesses* through it are covered by the `SyncTable::view`
// contract (no data races), and `L: Send` permits the underlying data to
// be manipulated from another thread.
unsafe impl<L: Send> Send for SyncTableView<L> {}

impl<L: TableLayout> TableLayout for SyncTableView<L> {
    fn with_rels(_n: usize) -> Self {
        unreachable!("SyncTableView is a borrowed view; allocate the underlying layout instead")
    }

    // Each accessor materializes a reference to the underlying table only
    // for the duration of the (inlined) forwarded call, per the SyncTable
    // contract. SAFETY for every dereference below: `table` comes from
    // `UnsafeCell::get` on a live `SyncTable` borrow, and the view
    // contract rules out concurrent conflicting accesses.
    #[inline]
    fn rels(&self) -> usize {
        unsafe { (*self.table).rels() }
    }

    #[inline]
    fn card(&self, s: RelSet) -> f64 {
        unsafe { (*self.table).card(s) }
    }

    #[inline]
    fn set_card(&mut self, s: RelSet, v: f64) {
        unsafe { (*self.table).set_card(s, v) }
    }

    #[inline]
    fn cost(&self, s: RelSet) -> f32 {
        unsafe { (*self.table).cost(s) }
    }

    #[inline]
    fn set_cost(&mut self, s: RelSet, v: f32) {
        unsafe { (*self.table).set_cost(s, v) }
    }

    #[inline]
    fn best_lhs(&self, s: RelSet) -> RelSet {
        unsafe { (*self.table).best_lhs(s) }
    }

    #[inline]
    fn set_best_lhs(&mut self, s: RelSet, v: RelSet) {
        unsafe { (*self.table).set_best_lhs(s, v) }
    }

    #[inline]
    fn pi_fan(&self, s: RelSet) -> f64 {
        unsafe { (*self.table).pi_fan(s) }
    }

    #[inline]
    fn set_pi_fan(&mut self, s: RelSet, v: f64) {
        unsafe { (*self.table).set_pi_fan(s, v) }
    }

    #[inline]
    fn aux(&self, s: RelSet) -> f32 {
        unsafe { (*self.table).aux(s) }
    }

    #[inline]
    fn set_aux(&mut self, s: RelSet, v: f32) {
        unsafe { (*self.table).set_aux(s, v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<L: TableLayout>() {
        let mut t = L::with_rels(4);
        assert_eq!(t.rels(), 4);
        let s = RelSet::from_bits(0b1011);
        t.set_card(s, 600.0);
        t.set_cost(s, 42.5);
        t.set_best_lhs(s, RelSet::from_bits(0b0011));
        t.set_pi_fan(s, 0.125);
        t.set_aux(s, 7.0);
        assert_eq!(t.card(s), 600.0);
        assert_eq!(t.cost(s), 42.5);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0011));
        assert_eq!(t.pi_fan(s), 0.125);
        assert_eq!(t.aux(s), 7.0);
        // Other rows untouched.
        let other = RelSet::from_bits(0b0111);
        assert_eq!(t.card(other), 0.0);
        assert!(t.cost(other).is_infinite());
        assert_eq!(t.pi_fan(other), 1.0);
    }

    #[test]
    fn aos_roundtrip() {
        roundtrip::<AosTable>();
    }

    #[test]
    fn soa_roundtrip() {
        roundtrip::<SoaTable>();
    }

    #[test]
    fn default_cost_is_infinite() {
        let t = AosTable::with_rels(3);
        for bits in 1u32..8 {
            assert!(t.cost(RelSet::from_bits(bits)).is_infinite());
        }
    }

    #[test]
    #[should_panic]
    fn too_many_rels_panics() {
        let _ = AosTable::with_rels(MAX_TABLE_RELS + 1);
    }

    #[test]
    fn row_is_32_bytes() {
        // The paper's product-only row is 16 bytes; ours adds the Π_fan
        // column (8) and the cost-model memo (4+pad). Keep it compact.
        assert_eq!(std::mem::size_of::<Row>(), 32);
    }

    #[test]
    fn compact_row_is_exactly_16_bytes() {
        // Section 4.1's headline number.
        assert_eq!(std::mem::size_of::<CompactRow>(), 16);
    }

    #[test]
    fn compact_table_roundtrips_product_fields() {
        let mut t = CompactProductTable::with_rels(4);
        let s = RelSet::from_bits(0b1011);
        t.set_card(s, 600.0);
        t.set_cost(s, 42.5);
        t.set_best_lhs(s, RelSet::from_bits(0b0011));
        t.set_pi_fan(s, 1.0); // neutral write accepted
        t.set_aux(s, 0.0);
        assert_eq!(t.card(s), 600.0);
        assert_eq!(t.cost(s), 42.5);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0011));
        assert_eq!(t.pi_fan(s), 1.0);
    }

    #[test]
    fn sync_view_forwards_to_backing_table() {
        let mut t = AosTable::with_rels(4);
        {
            let shared = SyncTable::from_mut(&mut t);
            // SAFETY: single-threaded use trivially satisfies the wave
            // discipline (no concurrent views at all).
            let mut view = unsafe { shared.view() };
            assert_eq!(view.rels(), 4);
            let s = RelSet::from_bits(0b0101);
            view.set_card(s, 3.5);
            view.set_cost(s, 9.0);
            view.set_best_lhs(s, RelSet::from_bits(0b0001));
            assert_eq!(view.card(s), 3.5);
        }
        let s = RelSet::from_bits(0b0101);
        assert_eq!(t.card(s), 3.5);
        assert_eq!(t.cost(s), 9.0);
        assert_eq!(t.best_lhs(s), RelSet::from_bits(0b0001));
    }

    #[test]
    fn disjoint_row_writes_from_two_threads() {
        let mut t = AosTable::with_rels(6);
        {
            let shared = SyncTable::from_mut(&mut t);
            std::thread::scope(|scope| {
                for half in 0..2u32 {
                    // SAFETY: the two views write disjoint rows (split by
                    // the low bit of the set index) and read nothing.
                    let mut view = unsafe { shared.view() };
                    scope.spawn(move || {
                        for bits in 1u32..64 {
                            if bits & 1 == half {
                                view.set_cost(RelSet::from_bits(bits), bits as f32);
                            }
                        }
                    });
                }
            });
        }
        for bits in 1u32..64 {
            assert_eq!(t.cost(RelSet::from_bits(bits)), bits as f32);
        }
    }

    #[test]
    #[should_panic]
    fn compact_table_rejects_fan_writes() {
        let mut t = CompactProductTable::with_rels(3);
        t.set_pi_fan(RelSet::from_bits(0b11), 0.5);
    }
}
