//! Measured host calibration: turn the compiled performance constants
//! into numbers measured on *this* machine.
//!
//! Three of the optimizer's knobs are pure performance policy — they
//! cannot change a single output bit, only how fast the bits are
//! produced (every kernel, driver and floor combination is
//! bit-identical; see [`crate::kernel`] and [`crate::conv`]):
//!
//! * the split kernel ([`KernelChoice`]),
//! * the `Auto` driver crossover ([`crate::CONV_AUTO_MIN_RELS`]),
//!   which may differ per cost model — a κ''-free model reaches the
//!   conv win earlier than one whose κ'' dominates the loop body,
//! * the scalar wave floor ([`crate::DEFAULT_SCALAR_WAVE_FLOOR`]).
//!
//! The compiled defaults were measured once, on one container (see
//! EXPERIMENTS.md). [`calibrate`] re-measures them here and now: it
//! times the actual optimizer on synthetic cliques, finds the
//! per-model driver crossover, the fastest kernel and the best floor,
//! and returns a [`CalibrationProfile`]. The profile persists as a
//! small versioned text file (hand-rolled writer/parser in the spirit
//! of the bench crate's JSON module — no serde dependency) and is
//! consumed in three places:
//!
//! * [`DriveOptions::default`] consults [`host_profile`] — the profile
//!   named by the [`PROFILE_ENV`] environment variable — so every
//!   default-configured optimization in the process uses measured
//!   defaults, with the compiled constants as fallback;
//! * the service loads a profile at startup (`serve --profile`) and
//!   applies the per-model crossover per request;
//! * the CLI's `blitzsplit calibrate` subcommand writes the file.
//!
//! Precedence everywhere: explicit request/env override > profile >
//! compiled constant.
//!
//! # Profile format
//!
//! Line-oriented text, one `key = value` per line, `#` comments, and a
//! mandatory `blitz-profile v1` header:
//!
//! ```text
//! blitz-profile v1
//! # written by `blitzsplit calibrate`
//! kernel = simd
//! scalar_wave_floor = 4
//! conv_min_rels = 6
//! conv_min_rels.kappa0 = 5
//! conv_min_rels.kappa_sm = 6
//! ```
//!
//! `conv_min_rels.<model>` keys carry the per-model crossover, keyed by
//! [`CostModel::name`]; the bare `conv_min_rels` is the default for
//! models without their own line. Unknown keys are skipped (a v1 reader
//! stays usable on a richer future profile); malformed lines and a
//! missing or wrong header are errors.

use crate::conv::{DriverChoice, CONV_AUTO_MIN_RELS, DEFAULT_SCALAR_WAVE_FLOOR};
use crate::cost::{CostModel, DiskNestedLoops, Kappa0, SmDnl, SortMerge};
use crate::kernel::KernelChoice;
use crate::spec::JoinSpec;
use crate::split::DriveOptions;
use crate::table::LayoutChoice;
use std::path::Path;
use std::time::{Duration, Instant};

/// Environment variable naming the host profile file consulted by
/// [`host_profile`] (and therefore by [`DriveOptions::default`]).
pub const PROFILE_ENV: &str = "BLITZ_PROFILE";

/// The header line every profile file starts with; the `v1` suffix is
/// the format version.
const HEADER: &str = "blitz-profile v1";

/// A measured performance profile for one host. Every field is
/// optional: a missing knob means "keep the compiled constant", so a
/// partial (or empty) profile degrades gracefully.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CalibrationProfile {
    /// Fastest split kernel measured on this host.
    pub kernel: Option<KernelChoice>,
    /// Fastest scalar wave floor measured on this host.
    pub scalar_wave_floor: Option<u8>,
    /// Default `Auto` driver crossover for models without a per-model
    /// entry.
    pub conv_min_rels: Option<usize>,
    /// Per-model `Auto` crossovers, keyed by [`CostModel::name`]. Kept
    /// as a sorted list rather than a map: the profile is tiny, lookup
    /// is a linear scan, and rendering stays deterministic.
    pub per_model: Vec<(String, usize)>,
}

impl CalibrationProfile {
    /// The `Auto` crossover for `model_name`: the per-model entry if
    /// one was measured, else the profile default, else `None` (keep
    /// the compiled constant).
    pub fn conv_min_rels_for(&self, model_name: &str) -> Option<usize> {
        self.per_model
            .iter()
            .find(|(name, _)| name == model_name)
            .map(|&(_, n)| n)
            .or(self.conv_min_rels)
    }

    /// Overlay this profile's measured knobs onto `options` for a run
    /// of the named model: kernel, floor and crossover are replaced
    /// where the profile has a measurement, everything else passes
    /// through. Callers with explicit user overrides apply them *after*
    /// this (explicit > profile > compiled).
    pub fn apply(&self, options: DriveOptions, model_name: &str) -> DriveOptions {
        let mut options = options;
        if let Some(kernel) = self.kernel {
            options = options.with_kernel(kernel);
        }
        if let Some(floor) = self.scalar_wave_floor {
            options = options.with_scalar_wave_floor(floor);
        }
        if let Some(min_rels) = self.conv_min_rels_for(model_name) {
            options = options.with_conv_min_rels(min_rels);
        }
        options
    }

    /// Parse a profile from its text form. Inverse of
    /// [`render`](CalibrationProfile::render).
    pub fn parse(text: &str) -> Result<CalibrationProfile, String> {
        let mut lines = text.lines();
        match lines.next().map(str::trim) {
            Some(HEADER) => {}
            Some(other) => return Err(format!("bad profile header {other:?} (want {HEADER:?})")),
            None => return Err("empty profile".to_string()),
        }
        let mut profile = CalibrationProfile::default();
        for (idx, raw) in lines.enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Model names may contain anything but '=' and newlines
            // (`min(kappa_sm,kappa_dnl)` is a real key suffix), so the
            // split is on the *first* '=' only.
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: no `=` in {line:?}", idx + 2));
            };
            let (key, value) = (key.trim(), value.trim());
            let parse_rels = |v: &str| {
                v.parse::<usize>().map_err(|_| {
                    format!("line {}: bad relation count {v:?}", idx + 2)
                })
            };
            if key == "kernel" {
                profile.kernel = Some(KernelChoice::parse(value).ok_or_else(|| {
                    format!("line {}: unknown kernel {value:?}", idx + 2)
                })?);
            } else if key == "scalar_wave_floor" {
                profile.scalar_wave_floor = Some(value.parse::<u8>().map_err(|_| {
                    format!("line {}: bad wave floor {value:?}", idx + 2)
                })?);
            } else if key == "conv_min_rels" {
                profile.conv_min_rels = Some(parse_rels(value)?);
            } else if let Some(model) = key.strip_prefix("conv_min_rels.") {
                profile.per_model.push((model.to_string(), parse_rels(value)?));
            }
            // Unknown keys: skipped, so a v1 reader tolerates fields a
            // future version may add.
        }
        profile.per_model.sort();
        Ok(profile)
    }

    /// Render the profile to its text form. Inverse of
    /// [`parse`](CalibrationProfile::parse): `parse(render(p)) == p`
    /// for any profile whose `per_model` list is sorted (which
    /// [`calibrate`] and `parse` both guarantee).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        if let Some(kernel) = self.kernel {
            out.push_str(&format!("kernel = {}\n", kernel.name()));
        }
        if let Some(floor) = self.scalar_wave_floor {
            out.push_str(&format!("scalar_wave_floor = {floor}\n"));
        }
        if let Some(min_rels) = self.conv_min_rels {
            out.push_str(&format!("conv_min_rels = {min_rels}\n"));
        }
        for (model, min_rels) in &self.per_model {
            out.push_str(&format!("conv_min_rels.{model} = {min_rels}\n"));
        }
        out
    }

    /// Read and parse a profile file.
    pub fn load(path: &Path) -> Result<CalibrationProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        CalibrationProfile::parse(&text)
    }

    /// Render and write the profile to a file.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// The process-wide host profile: loaded once from the file named by
/// [`PROFILE_ENV`], `None` when the variable is unset or the file does
/// not parse (a warning lands on stderr in the latter case — a corrupt
/// profile should degrade loudly to the compiled constants, not
/// silently change performance).
pub fn host_profile() -> Option<&'static CalibrationProfile> {
    static HOST: std::sync::OnceLock<Option<CalibrationProfile>> = std::sync::OnceLock::new();
    HOST.get_or_init(|| {
        let path = std::env::var_os(PROFILE_ENV)?;
        let path = Path::new(&path);
        match CalibrationProfile::load(path) {
            Ok(profile) => Some(profile),
            Err(e) => {
                eprintln!("warning: ignoring {PROFILE_ENV}: {e}");
                None
            }
        }
    })
    .as_ref()
}

/// Knobs for [`calibrate`]: how much work the measurement pass does.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CalibrateOptions {
    /// Largest relation count timed (kernel and floor are picked at
    /// this size, where the inner loop dominates). The driver
    /// crossover sweep is capped below this to stay quick.
    pub max_rels: usize,
    /// Timing repetitions per configuration; the minimum is kept
    /// (standard min-of-reps noise rejection for CPU-bound loops).
    pub reps: usize,
}

impl Default for CalibrateOptions {
    fn default() -> CalibrateOptions {
        CalibrateOptions { max_rels: 14, reps: 3 }
    }
}

/// A synthetic clique query of `n` relations with deterministically
/// varied cardinalities and selectivities — the densest predicate
/// topology, so every split is a join and κ'' runs at full weight.
fn clique_spec(n: usize) -> JoinSpec {
    let cards: Vec<f64> = (0..n).map(|i| 40.0 + 17.0 * ((i * i % 23) as f64)).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j, 0.002 + 0.013 * (((i + 3 * j) % 7) as f64)));
        }
    }
    JoinSpec::new(&cards, &edges).expect("calibration spec is well-formed")
}

/// Minimum wall time of `reps` serial optimizations of `spec` under
/// `options`.
fn time_drive<M: CostModel + Sync>(
    spec: &JoinSpec,
    model: &M,
    options: DriveOptions,
    reps: usize,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let optimized = crate::join::optimize_join_with(spec, model, options);
        let elapsed = start.elapsed();
        std::hint::black_box(&optimized);
        best = best.min(elapsed);
    }
    best
}

/// Smallest `n` (within `range`) from which the conv driver is at or
/// ahead of the split driver for `model`, or `range.end() + 1` when
/// split kept winning throughout — i.e. "never, within the measured
/// range", which makes `Auto` stick to split everywhere the
/// measurement looked.
fn crossover_for<M: CostModel + Sync>(
    model: &M,
    base: DriveOptions,
    range: std::ops::RangeInclusive<usize>,
    reps: usize,
) -> usize {
    let end = *range.end();
    for n in range {
        let spec = clique_spec(n);
        let split = time_drive(&spec, model, base.with_driver(DriverChoice::Split), reps);
        let conv = time_drive(&spec, model, base.with_driver(DriverChoice::Conv), reps);
        if conv <= split {
            return n;
        }
    }
    end + 1
}

/// Run the measurement pass and return the resulting profile.
///
/// The pass is deliberately short (a few hundred milliseconds at the
/// default [`CalibrateOptions`]): it times the real optimizer — the
/// same entry point the service uses — on synthetic cliques, so the
/// numbers include exactly the batch-fill, dispatch and walk overheads
/// the constants are meant to balance.
///
/// Every measured knob is pure scheduling; a profile can make the
/// optimizer slower on a bad day, never wrong.
pub fn calibrate(opts: &CalibrateOptions) -> CalibrationProfile {
    let reps = opts.reps;
    let big_n = opts.max_rels.clamp(8, 18);

    // 1. Kernel: timed at the largest size, split driver, where the
    //    inner-loop reformulation is the whole story. Raced on the
    //    hot/cold layout: it is the only layout whose `cost_base` the
    //    vector kernels can gather from (on AoS, `Simd` degrades to the
    //    portable per-lane path and the race would be batched-vs-
    //    batched noise), and it is the layout the service defaults to.
    let big = clique_spec(big_n);
    let base = DriveOptions::serial().with_layout(LayoutChoice::HotCold);
    let kernel = KernelChoice::ALL
        .into_iter()
        .min_by_key(|&k| time_drive(&big, &Kappa0, base.with_kernel(k), reps))
        .unwrap_or_default();
    let tuned = base.with_kernel(kernel);

    // 2. Scalar wave floor: only meaningful when batches actually run.
    let scalar_wave_floor = if kernel == KernelChoice::Scalar {
        DEFAULT_SCALAR_WAVE_FLOOR
    } else {
        [0u8, 2, 4, 6]
            .into_iter()
            .min_by_key(|&floor| {
                time_drive(&big, &Kappa0, tuned.with_scalar_wave_floor(floor), reps)
            })
            .unwrap_or(DEFAULT_SCALAR_WAVE_FLOOR)
    };
    let tuned = tuned.with_scalar_wave_floor(scalar_wave_floor);

    // 3. Per-model driver crossover, swept over the small sizes where
    //    the split/conv balance actually tips. Capped at 12 relations:
    //    past that conv's halved candidate count dominates any per-row
    //    overhead on every model we ship, and the sweep stays quick.
    let hi = big_n.min(12);
    let range = || 4..=hi;
    let per_model: Vec<(String, usize)> = [
        (Kappa0.name(), crossover_for(&Kappa0, tuned, range(), reps)),
        (SortMerge.name(), crossover_for(&SortMerge, tuned, range(), reps)),
        (
            DiskNestedLoops::default().name(),
            crossover_for(&DiskNestedLoops::default(), tuned, range(), reps),
        ),
        (
            SmDnl::default().name(),
            crossover_for(&SmDnl::default(), tuned, range(), reps),
        ),
    ]
    .into_iter()
    .map(|(name, n)| (name.to_string(), n))
    .collect();
    // Default for unknown models: the most conservative (largest)
    // measured crossover, compiled constant as a floor so a noisy run
    // can't make third-party models eagerly conv below the shipped
    // models' worst case.
    let conv_min_rels = per_model
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(CONV_AUTO_MIN_RELS);

    let mut per_model = per_model;
    per_model.sort();
    CalibrationProfile {
        kernel: Some(kernel),
        scalar_wave_floor: Some(scalar_wave_floor),
        conv_min_rels: Some(conv_min_rels),
        per_model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ConvSupport;

    fn synthetic() -> CalibrationProfile {
        CalibrationProfile {
            kernel: Some(KernelChoice::Batched),
            scalar_wave_floor: Some(2),
            conv_min_rels: Some(9),
            per_model: vec![
                ("kappa_sm".to_string(), 3),
                ("min(kappa_sm,kappa_dnl)".to_string(), 11),
            ],
        }
    }

    #[test]
    fn profile_round_trips_through_text() {
        let p = synthetic();
        let text = p.render();
        assert_eq!(CalibrationProfile::parse(&text).unwrap(), p);
        // An empty profile round-trips too (header only).
        let empty = CalibrationProfile::default();
        assert_eq!(CalibrationProfile::parse(&empty.render()).unwrap(), empty);
        // Comments, blank lines and unknown keys are tolerated.
        let loose = format!("{HEADER}\n\n# comment\nfuture_knob = 7\nconv_min_rels = 5\n");
        let parsed = CalibrationProfile::parse(&loose).unwrap();
        assert_eq!(parsed.conv_min_rels, Some(5));
        assert_eq!(parsed.kernel, None);
    }

    #[test]
    fn profile_rejects_malformed_input() {
        assert!(CalibrationProfile::parse("").is_err());
        assert!(CalibrationProfile::parse("blitz-profile v0\n").is_err());
        assert!(CalibrationProfile::parse(&format!("{HEADER}\nno equals here\n")).is_err());
        assert!(CalibrationProfile::parse(&format!("{HEADER}\nkernel = warp\n")).is_err());
        assert!(CalibrationProfile::parse(&format!("{HEADER}\nconv_min_rels = many\n")).is_err());
        assert!(CalibrationProfile::parse(&format!("{HEADER}\nscalar_wave_floor = -1\n")).is_err());
    }

    #[test]
    fn profile_round_trips_through_a_file() {
        let p = synthetic();
        let path = std::env::temp_dir()
            .join(format!("blitz-profile-test-{}.txt", std::process::id()));
        p.save(&path).unwrap();
        let back = CalibrationProfile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, p);
        assert!(CalibrationProfile::load(Path::new("/nonexistent/blitz")).is_err());
    }

    /// The acceptance-criterion test: a synthetic profile demonstrably
    /// overrides the compiled defaults in `Auto` driver / kernel /
    /// floor resolution.
    #[test]
    fn synthetic_profile_overrides_compiled_defaults() {
        let p = synthetic();
        // Per-model crossover: explicit entry beats the default entry.
        assert_eq!(p.conv_min_rels_for("kappa_sm"), Some(3));
        assert_eq!(p.conv_min_rels_for("min(kappa_sm,kappa_dnl)"), Some(11));
        assert_eq!(p.conv_min_rels_for("kappa0"), Some(9)); // falls to default
        assert_eq!(CalibrationProfile::default().conv_min_rels_for("kappa0"), None);

        // apply(): measured knobs replace compiled ones on the options.
        let compiled = DriveOptions::serial();
        assert_eq!(compiled.conv_min_rels, CONV_AUTO_MIN_RELS);
        assert_eq!(compiled.scalar_wave_floor, DEFAULT_SCALAR_WAVE_FLOOR);
        let tuned = p.apply(compiled, "kappa_sm");
        assert_eq!(tuned.kernel, KernelChoice::Batched);
        assert_eq!(tuned.scalar_wave_floor, 2);
        assert_eq!(tuned.conv_min_rels, 3);

        // ...and Auto resolution actually moves: with the compiled
        // crossover a 4-relation SortMerge query splits; under the
        // synthetic profile it convs.
        let auto = DriverChoice::Auto;
        assert_eq!(
            auto.resolve(ConvSupport::Canonical, 4, compiled.conv_min_rels),
            DriverChoice::Split
        );
        assert_eq!(
            auto.resolve(ConvSupport::Canonical, 4, tuned.conv_min_rels),
            DriverChoice::Conv
        );

        // A partial profile leaves un-measured knobs alone.
        let partial = CalibrationProfile { kernel: None, ..synthetic() };
        let tuned = partial.apply(compiled, "kappa0");
        assert_eq!(tuned.kernel, compiled.kernel);
        assert_eq!(tuned.conv_min_rels, 9);
    }

    /// A real (tiny) measurement pass produces a complete profile whose
    /// text form round-trips. Timing values are host-dependent, so only
    /// structure is asserted.
    #[test]
    fn calibrate_produces_a_complete_round_tripping_profile() {
        let p = calibrate(&CalibrateOptions { max_rels: 8, reps: 1 });
        assert!(p.kernel.is_some());
        assert!(p.scalar_wave_floor.is_some());
        assert!(p.conv_min_rels.is_some());
        let names: Vec<&str> = p.per_model.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["kappa0", "kappa_dnl", "kappa_sm", "min(kappa_sm,kappa_dnl)"]);
        assert_eq!(CalibrationProfile::parse(&p.render()).unwrap(), p);
        // The default is the most conservative per-model crossover.
        let max = p.per_model.iter().map(|&(_, n)| n).max().unwrap();
        assert_eq!(p.conv_min_rels, Some(max));
    }
}
