//! Bushy plan trees: extraction from the DP table, re-costing, shape
//! queries, and physical-algorithm annotation (paper Sections 3.1 and 6.5).
//!
//! A [`Plan`] records only the *shape* of a join tree (which relations
//! join in which order); cardinalities and costs are derived properties of
//! a shape with respect to a [`JoinSpec`] and a [`CostModel`]. Keeping the
//! shape pure makes plans cheap to transform (the stochastic baselines
//! rewrite shapes freely) and impossible to de-synchronize from their
//! statistics. [`Plan::annotate`] produces a fully-costed tree — and, per
//! Section 6.5, attaches the cheapest physical join algorithm to each node
//! in a single traversal after optimization.

use crate::bitset::RelSet;
use crate::cost::{CostModel, JoinAlgorithm, SmDnl};
use crate::spec::JoinSpec;
use crate::table::TableLayout;

/// The shape of a (bushy) join tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Plan {
    /// A base-relation scan.
    Scan {
        /// Index of the base relation.
        rel: usize,
    },
    /// A dyadic join (or Cartesian product, when no predicate spans the
    /// children).
    Join {
        /// Left input (`S_lhs` / outer).
        left: Box<Plan>,
        /// Right input (`S_rhs` / inner).
        right: Box<Plan>,
    },
}

impl Plan {
    /// Leaf constructor.
    pub fn scan(rel: usize) -> Plan {
        Plan::Scan { rel }
    }

    /// Join constructor.
    pub fn join(left: Plan, right: Plan) -> Plan {
        Plan::Join { left: Box::new(left), right: Box::new(right) }
    }

    /// The set of base relations covered by this (sub)plan.
    pub fn rel_set(&self) -> RelSet {
        match self {
            Plan::Scan { rel } => RelSet::singleton(*rel),
            Plan::Join { left, right } => left.rel_set() | right.rel_set(),
        }
    }

    /// Number of join (internal) nodes; a plan over `n` relations has
    /// `n − 1`.
    pub fn num_joins(&self) -> usize {
        match self {
            Plan::Scan { .. } => 0,
            Plan::Join { left, right } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// Height of the tree (a scan has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Plan::Scan { .. } => 0,
            Plan::Join { left, right } => 1 + left.depth().max(right.depth()),
        }
    }

    /// `true` iff every join's right input is a base relation — the
    /// "left-deep vine" shape many optimizers restrict themselves to.
    pub fn is_left_deep(&self) -> bool {
        match self {
            Plan::Scan { .. } => true,
            Plan::Join { left, right } => {
                matches!(**right, Plan::Scan { .. }) && left.is_left_deep()
            }
        }
    }

    /// `true` iff some join's inputs are connected by no predicate — i.e.
    /// the plan contains a Cartesian product with respect to `spec`.
    pub fn contains_cartesian_product(&self, spec: &JoinSpec) -> bool {
        match self {
            Plan::Scan { .. } => false,
            Plan::Join { left, right } => {
                !spec.spans(left.rel_set(), right.rel_set())
                    || left.contains_cartesian_product(spec)
                    || right.contains_cartesian_product(spec)
            }
        }
    }

    /// Recompute the plan's cost bottom-up under `spec`/`model`, returning
    /// `(result cardinality, total cost)`.
    ///
    /// This is the recursive definition of equations (1)–(2) — the cost of
    /// a base relation is 0, and `cost(E ⨝ E') = cost(E) + cost(E') +
    /// κ(⟦E⨝E'⟧, ⟦E⟧, ⟦E'⟧)` — evaluated directly, independent of the DP
    /// table. Used to cross-validate the optimizer and to cost plans
    /// produced by heuristic/stochastic baselines.
    pub fn cost<M: CostModel>(&self, spec: &JoinSpec, model: &M) -> (f64, f32) {
        match self {
            Plan::Scan { rel } => (spec.card(*rel), 0.0),
            Plan::Join { left, right } => {
                let (lc, lcost) = left.cost(spec, model);
                let (rc, rcost) = right.cost(spec, model);
                let out = lc * rc * spec.pi_span(left.rel_set(), right.rel_set());
                let cost = lcost + rcost + model.kappa(out, lc, rc);
                (out, cost)
            }
        }
    }

    /// Canonical form: reorder each join's children so that the side
    /// containing the smaller minimum relation comes first. Two plans that
    /// differ only by join commutativity canonicalize identically —
    /// convenient for tests. (Note: commuted plans may genuinely differ in
    /// cost under asymmetric models such as `κ_dnl`; canonicalization is a
    /// *shape* equivalence, not a cost equivalence.)
    pub fn canonical(&self) -> Plan {
        match self {
            Plan::Scan { rel } => Plan::scan(*rel),
            Plan::Join { left, right } => {
                let l = left.canonical();
                let r = right.canonical();
                if l.rel_set().min_rel() <= r.rel_set().min_rel() {
                    Plan::join(l, r)
                } else {
                    Plan::join(r, l)
                }
            }
        }
    }

    /// All leaves, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            Plan::Scan { rel } => out.push(*rel),
            Plan::Join { left, right } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// Extract the optimal plan for subset `s` from a filled DP table by
    /// recursively consulting the `best_lhs` fields (paper Section 3.1:
    /// "we then find optimal subexpressions … by recursively consulting
    /// the table in the same manner").
    ///
    /// # Panics
    /// Panics if `s` is empty or if the table rows for `s` or any
    /// required subset were never filled in (e.g. a threshold pass failed).
    pub fn extract<L: TableLayout>(table: &L, s: RelSet) -> Plan {
        assert!(!s.is_empty(), "cannot extract a plan for the empty set");
        if s.is_singleton() {
            return Plan::scan(s.min_rel().unwrap());
        }
        let lhs = table.best_lhs(s);
        assert!(
            !lhs.is_empty() && lhs.is_subset_of(s) && lhs != s,
            "table row for {s:?} holds no valid split (best_lhs = {lhs:?}); \
             was optimization successful?"
        );
        let rhs = s - lhs;
        Plan::join(Plan::extract(table, lhs), Plan::extract(table, rhs))
    }

    /// Annotate the plan with per-node cardinalities, costs and (when the
    /// model distinguishes algorithms) the cheapest physical join
    /// algorithm — the single post-optimization traversal of Section 6.5.
    pub fn annotate<M: CostModel>(&self, spec: &JoinSpec, model: &M) -> AnnotatedPlan {
        self.annotate_inner(spec, model, None)
    }

    /// Like [`Plan::annotate`], but chooses between sort-merge and
    /// disk-nested-loops per node using the combined [`SmDnl`] model.
    pub fn annotate_algorithms(&self, spec: &JoinSpec, model: &SmDnl) -> AnnotatedPlan {
        self.annotate_inner(spec, model, Some(model))
    }

    fn annotate_inner<M: CostModel>(
        &self,
        spec: &JoinSpec,
        model: &M,
        algo: Option<&SmDnl>,
    ) -> AnnotatedPlan {
        match self {
            Plan::Scan { rel } => AnnotatedPlan {
                set: RelSet::singleton(*rel),
                card: spec.card(*rel),
                cost: 0.0,
                algorithm: None,
                children: Vec::new(),
            },
            Plan::Join { left, right } => {
                let l = left.annotate_inner(spec, model, algo);
                let r = right.annotate_inner(spec, model, algo);
                let out = l.card * r.card * spec.pi_span(l.set, r.set);
                let cost = l.cost + r.cost + model.kappa(out, l.card, r.card);
                let algorithm = algo.map(|m| m.cheaper_algorithm(out, l.card, r.card));
                AnnotatedPlan { set: l.set | r.set, card: out, cost, algorithm, children: vec![l, r] }
            }
        }
    }

    /// Render the plan as a Graphviz `digraph` for visual inspection
    /// (`dot -Tsvg plan.dot`). Join nodes are labeled with their relation
    /// sets; edges point from operators to their inputs.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n");
        let mut next_id = 0usize;
        self.dot_node(&mut out, &mut next_id);
        out.push_str("}\n");
        out
    }

    fn dot_node(&self, out: &mut String, next_id: &mut usize) -> usize {
        use std::fmt::Write;
        let id = *next_id;
        *next_id += 1;
        match self {
            Plan::Scan { rel } => {
                let _ = writeln!(out, "  n{id} [label=\"Scan R{rel}\", shape=ellipse];");
            }
            Plan::Join { left, right } => {
                let _ = writeln!(out, "  n{id} [label=\"Join {:?}\"];", self.rel_set());
                let l = left.dot_node(out, next_id);
                let r = right.dot_node(out, next_id);
                let _ = writeln!(out, "  n{id} -> n{l};");
                let _ = writeln!(out, "  n{id} -> n{r};");
            }
        }
        id
    }

    /// Render the plan as a nested expression, e.g. `((R0 x R3) x (R1 x R2))`.
    pub fn to_expr(&self) -> String {
        match self {
            Plan::Scan { rel } => format!("R{rel}"),
            Plan::Join { left, right } => {
                format!("({} x {})", left.to_expr(), right.to_expr())
            }
        }
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_expr())
    }
}

/// Handle to a node inside a [`PlanArena`].
///
/// Only meaningful for the arena that produced it; indexing another
/// arena with it yields an unrelated node (or a panic).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PlanNodeId(u32);

const ARENA_NIL: u32 = u32::MAX;

/// One arena node: a scan (`left == ARENA_NIL`) or a join.
#[derive(Copy, Clone, Debug)]
struct ArenaNode {
    /// Base-relation index for scans; unused for joins.
    rel: u32,
    /// Left child, or [`ARENA_NIL`] for a scan.
    left: u32,
    /// Right child, or [`ARENA_NIL`] for a scan.
    right: u32,
}

/// A reusable, flat node store for plan extraction.
///
/// [`Plan::extract`] allocates two `Box`es per join node — `2n − 1`
/// heap allocations for an `n`-relation query, paid on every
/// extraction. A `PlanArena` replaces them with appends into one
/// recycled `Vec`: after the first extraction of a given size warms the
/// backing storage, [`PlanArena::extract`] (and
/// [`PlanArena::clear`]) performs **zero** heap allocations — pinned by
/// the `no_alloc` integration suite. The service keeps a pool of warm
/// arenas and recycles them across requests the same way it recycles DP
/// tables.
///
/// The arena owns only shapes; convert a root to an owned [`Plan`] with
/// [`PlanArena::to_plan`] (which allocates, for callers that need the
/// boxed form, e.g. to share a plan beyond the arena's lifetime) or
/// render it directly with [`PlanArena::write_expr`].
#[derive(Clone, Debug, Default)]
pub struct PlanArena {
    nodes: Vec<ArenaNode>,
}

impl PlanArena {
    /// An empty arena. The first extraction grows it; prefer
    /// [`PlanArena::with_node_capacity`] when the plan size is known.
    pub fn new() -> PlanArena {
        PlanArena::default()
    }

    /// An arena pre-sized for `nodes` plan nodes (a plan over `n`
    /// relations has `2n − 1`).
    pub fn with_node_capacity(nodes: usize) -> PlanArena {
        PlanArena { nodes: Vec::with_capacity(nodes) }
    }

    /// Drop all nodes, keeping the backing storage for reuse. Every
    /// previously issued [`PlanNodeId`] is invalidated.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes the arena can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.nodes.capacity()
    }

    fn push(&mut self, node: ArenaNode) -> PlanNodeId {
        let id = u32::try_from(self.nodes.len()).expect("plan arena node count fits u32");
        self.nodes.push(node);
        PlanNodeId(id)
    }

    /// Append a scan leaf.
    pub fn scan(&mut self, rel: usize) -> PlanNodeId {
        let rel = u32::try_from(rel).expect("relation index fits u32");
        self.push(ArenaNode { rel, left: ARENA_NIL, right: ARENA_NIL })
    }

    /// Append a join over two existing nodes.
    pub fn join(&mut self, left: PlanNodeId, right: PlanNodeId) -> PlanNodeId {
        self.push(ArenaNode { rel: 0, left: left.0, right: right.0 })
    }

    /// [`Plan::extract`] into the arena: append the optimal plan for
    /// subset `s` from a filled DP table and return its root. Does not
    /// clear first, so several plans can share one arena; recycle with
    /// [`PlanArena::clear`].
    ///
    /// # Panics
    /// Panics if `s` is empty or if the table rows for `s` or any
    /// required subset were never filled in (e.g. a threshold pass
    /// failed).
    pub fn extract<L: TableLayout>(&mut self, table: &L, s: RelSet) -> PlanNodeId {
        assert!(!s.is_empty(), "cannot extract a plan for the empty set");
        if s.is_singleton() {
            return self.scan(s.min_rel().unwrap());
        }
        let lhs = table.best_lhs(s);
        assert!(
            !lhs.is_empty() && lhs.is_subset_of(s) && lhs != s,
            "table row for {s:?} holds no valid split (best_lhs = {lhs:?}); \
             was optimization successful?"
        );
        let left = self.extract(table, lhs);
        let right = self.extract(table, s - lhs);
        self.join(left, right)
    }

    /// Append a degenerate left-deep vine over relations `0..n` in input
    /// order — the fallback shape used when every plan's cost overflows.
    pub fn left_deep_vine(&mut self, n: usize) -> PlanNodeId {
        assert!(n >= 1, "a plan needs at least one relation");
        let mut root = self.scan(0);
        for rel in 1..n {
            let leaf = self.scan(rel);
            root = self.join(root, leaf);
        }
        root
    }

    /// The set of base relations covered by the subtree at `id`.
    pub fn rel_set(&self, id: PlanNodeId) -> RelSet {
        let node = self.nodes[id.0 as usize];
        if node.left == ARENA_NIL {
            RelSet::singleton(node.rel as usize)
        } else {
            self.rel_set(PlanNodeId(node.left)) | self.rel_set(PlanNodeId(node.right))
        }
    }

    /// Convert the subtree at `id` into an owned boxed [`Plan`]. This is
    /// the one allocating escape hatch — use it when the plan must
    /// outlive the arena (e.g. for caching), not per request.
    pub fn to_plan(&self, id: PlanNodeId) -> Plan {
        let node = self.nodes[id.0 as usize];
        if node.left == ARENA_NIL {
            Plan::scan(node.rel as usize)
        } else {
            Plan::join(self.to_plan(PlanNodeId(node.left)), self.to_plan(PlanNodeId(node.right)))
        }
    }

    /// Render the subtree at `id` in [`Plan::to_expr`] syntax, appending
    /// to `out` (no intermediate allocations beyond `out`'s growth).
    pub fn write_expr(&self, id: PlanNodeId, out: &mut String) {
        use std::fmt::Write;
        let node = self.nodes[id.0 as usize];
        if node.left == ARENA_NIL {
            let _ = write!(out, "R{}", node.rel);
        } else {
            out.push('(');
            self.write_expr(PlanNodeId(node.left), out);
            out.push_str(" x ");
            self.write_expr(PlanNodeId(node.right), out);
            out.push(')');
        }
    }

    /// [`PlanArena::write_expr`] into a fresh string.
    pub fn expr(&self, id: PlanNodeId) -> String {
        let mut out = String::new();
        self.write_expr(id, &mut out);
        out
    }
}

/// A plan tree annotated with per-node statistics; see [`Plan::annotate`].
#[derive(Clone, Debug)]
pub struct AnnotatedPlan {
    /// Relations covered by the node.
    pub set: RelSet,
    /// Estimated output cardinality.
    pub card: f64,
    /// Cumulative cost of the subtree.
    pub cost: f32,
    /// Chosen physical algorithm (join nodes under an algorithm-aware
    /// model; `None` for scans or single-algorithm models).
    pub algorithm: Option<JoinAlgorithm>,
    /// Child nodes (empty for scans, two for joins).
    pub children: Vec<AnnotatedPlan>,
}

impl AnnotatedPlan {
    /// Multi-line indented rendering for human consumption.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        for _ in 0..depth {
            out.push_str("  ");
        }
        if self.children.is_empty() {
            let rel = self.set.min_rel().unwrap_or(0);
            let _ = writeln!(out, "Scan R{rel}  card={:.6e}", self.card);
        } else {
            let algo = match self.algorithm {
                Some(JoinAlgorithm::SortMerge) => " [sort-merge]",
                Some(JoinAlgorithm::DiskNestedLoops) => " [disk-NL]",
                Some(JoinAlgorithm::Hash) => " [hash]",
                None => "",
            };
            let _ =
                writeln!(out, "Join {:?}{algo}  card={:.6e} cost={:.6e}", self.set, self.card, self.cost);
            for c in &self.children {
                c.render_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Kappa0;

    fn table1_spec() -> JoinSpec {
        JoinSpec::cartesian(&[10.0, 20.0, 30.0, 40.0]).unwrap()
    }

    /// `(A × D) × (B × C)` — the optimal expression of Table 1.
    fn table1_plan() -> Plan {
        Plan::join(
            Plan::join(Plan::scan(0), Plan::scan(3)),
            Plan::join(Plan::scan(1), Plan::scan(2)),
        )
    }

    #[test]
    fn shape_queries() {
        let p = table1_plan();
        assert_eq!(p.rel_set(), RelSet::full(4));
        assert_eq!(p.num_joins(), 3);
        assert_eq!(p.depth(), 2);
        assert!(!p.is_left_deep());
        assert_eq!(p.leaves(), vec![0, 3, 1, 2]);
        assert_eq!(p.to_expr(), "((R0 x R3) x (R1 x R2))");

        let ld = Plan::join(Plan::join(Plan::scan(0), Plan::scan(1)), Plan::scan(2));
        assert!(ld.is_left_deep());
        assert_eq!(ld.depth(), 2);
    }

    #[test]
    fn table1_cost_under_kappa0() {
        // Table 1's final row: cost 241 000 for (A×D)×(B×C).
        let spec = table1_spec();
        let (card, cost) = table1_plan().cost(&spec, &Kappa0);
        assert_eq!(card, 240_000.0);
        assert_eq!(cost, 241_000.0);
    }

    #[test]
    fn suboptimal_plan_costs_more() {
        // Left-deep ((A×B)×C)×D: 200 + 6000 + 240000 = 246200.
        let spec = table1_spec();
        let p = Plan::join(
            Plan::join(Plan::join(Plan::scan(0), Plan::scan(1)), Plan::scan(2)),
            Plan::scan(3),
        );
        let (_, cost) = p.cost(&spec, &Kappa0);
        assert_eq!(cost, 246_200.0);
        assert!(cost > 241_000.0);
    }

    #[test]
    fn cost_with_predicates_uses_spanning_selectivities() {
        let spec = JoinSpec::new(&[10.0, 20.0, 30.0], &[(0, 1, 0.1), (1, 2, 0.5)]).unwrap();
        // (R0 ⨝ R1) ⨝ R2 under κ0:
        //   R0⨝R1: out = 10·20·0.1 = 20, cost 20
        //   (R0R1)⨝R2: out = 20·30·0.5 = 300, cost 20 + 300 = 320
        let p = Plan::join(Plan::join(Plan::scan(0), Plan::scan(1)), Plan::scan(2));
        let (card, cost) = p.cost(&spec, &Kappa0);
        assert!((card - 300.0).abs() < 1e-9);
        assert!((cost - 320.0).abs() < 1e-3);
    }

    #[test]
    fn cartesian_product_detection() {
        let spec = JoinSpec::new(&[10.0, 20.0, 30.0], &[(0, 1, 0.1)]).unwrap();
        // R0⨝R1 then ×R2 → contains a product (R2 unconnected).
        let p = Plan::join(Plan::join(Plan::scan(0), Plan::scan(1)), Plan::scan(2));
        assert!(p.contains_cartesian_product(&spec));
        // Fully-connected pair only.
        let q = Plan::join(Plan::scan(0), Plan::scan(1));
        assert!(!q.contains_cartesian_product(&spec));
    }

    #[test]
    fn canonicalization_merges_commuted_shapes() {
        let a = Plan::join(Plan::scan(1), Plan::scan(0));
        let b = Plan::join(Plan::scan(0), Plan::scan(1));
        assert_ne!(a, b);
        assert_eq!(a.canonical(), b.canonical());

        let big1 = Plan::join(
            Plan::join(Plan::scan(2), Plan::scan(1)),
            Plan::join(Plan::scan(3), Plan::scan(0)),
        );
        let big2 = Plan::join(
            Plan::join(Plan::scan(0), Plan::scan(3)),
            Plan::join(Plan::scan(1), Plan::scan(2)),
        );
        assert_eq!(big1.canonical(), big2.canonical());
    }

    #[test]
    fn annotate_matches_cost() {
        let spec = table1_spec();
        let p = table1_plan();
        let a = p.annotate(&spec, &Kappa0);
        let (card, cost) = p.cost(&spec, &Kappa0);
        assert_eq!(a.card, card);
        assert_eq!(a.cost, cost);
        assert_eq!(a.children.len(), 2);
        let rendered = a.render();
        assert!(rendered.contains("Join"));
        assert!(rendered.contains("Scan R0"));
    }

    #[test]
    fn dot_export_contains_all_nodes_and_edges() {
        let p = table1_plan();
        let dot = p.to_dot();
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.ends_with("}\n"));
        // 4 scans + 3 joins = 7 node declarations; 6 edges.
        assert_eq!(dot.matches("[label=").count(), 7);
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert!(dot.contains("Scan R0"));
        assert!(dot.contains("Join {R0,R1,R2,R3}"));
    }

    #[test]
    fn annotate_algorithms_attaches_choice() {
        let spec = JoinSpec::new(&[1000.0, 2000.0], &[(0, 1, 0.001)]).unwrap();
        let model = SmDnl::default();
        let p = Plan::join(Plan::scan(0), Plan::scan(1));
        let a = p.annotate_algorithms(&spec, &model);
        assert!(a.algorithm.is_some());
    }

    #[test]
    fn arena_extract_matches_boxed_extract() {
        let spec = JoinSpec::new(
            &[10.0, 20.0, 30.0, 40.0, 50.0],
            &[(0, 1, 0.1), (1, 2, 0.2), (2, 3, 0.05), (0, 4, 0.5)],
        )
        .unwrap();
        let table = crate::join::optimize_join_into::<crate::table::AosTable, _, _, true>(
            &spec,
            &Kappa0,
            f32::INFINITY,
            &mut crate::stats::NoStats,
        );
        let full = spec.all_rels();
        let boxed = Plan::extract(&table, full);

        let mut arena = PlanArena::new();
        let root = arena.extract(&table, full);
        assert_eq!(arena.len(), 2 * spec.n() - 1);
        assert_eq!(arena.rel_set(root), full);
        assert_eq!(arena.to_plan(root), boxed);
        assert_eq!(arena.expr(root), boxed.to_expr());

        // Recycling: clear keeps storage, and a re-extraction lands on
        // the identical shape without growing the arena.
        let warmed = arena.capacity();
        arena.clear();
        assert!(arena.is_empty());
        let root = arena.extract(&table, full);
        assert_eq!(arena.capacity(), warmed);
        assert_eq!(arena.to_plan(root), boxed);
    }

    #[test]
    fn arena_vine_matches_boxed_fallback() {
        let mut arena = PlanArena::with_node_capacity(7);
        let root = arena.left_deep_vine(4);
        let mut boxed = Plan::scan(0);
        for rel in 1..4 {
            boxed = Plan::join(boxed, Plan::scan(rel));
        }
        assert_eq!(arena.to_plan(root), boxed);
        assert!(arena.to_plan(root).is_left_deep());
        assert_eq!(arena.expr(root), "(((R0 x R1) x R2) x R3)");
    }

    #[test]
    fn arena_rejects_empty_set() {
        let table = crate::table::AosTable::with_rels(2);
        let mut arena = PlanArena::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arena.extract(&table, RelSet::EMPTY)
        }));
        assert!(result.is_err());
    }
}
