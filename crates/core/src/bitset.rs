//! Bit-vector representation of relation sets (paper Section 4.1–4.2).
//!
//! The paper identifies relation names `R_0 .. R_{n-1}` with the integers
//! `0 .. n-1`, and represents *sets* of relation names as bit-vectors packed
//! into machine words. This module provides that representation, together
//! with the subset-successor iteration trick of Section 4.2:
//!
//! > `succ(S_lhs) = S & (S_lhs - S)` (two's-complement arithmetic)
//!
//! which steps through all subsets of `S` in "dilated counting" order
//! without ever materializing the dilation operator `δ_S`.

/// Maximum number of relations supported by [`RelSet`].
///
/// The paper notes the representation works "provided n ≤ 32"; we reserve
/// one bit so that `RelSet::full(n)` never overflows the shift. In practice
/// the `O(2^n)` dynamic-programming table limits `n` to the high twenties
/// long before this bound matters.
pub const MAX_RELS: usize = 31;

/// A set of relation names, packed into a `u32` bit-vector.
///
/// Relation `i` is a member iff bit `i` is set. The integer value of the
/// bit-vector doubles as the set's index into the flat dynamic-programming
/// table (paper Section 4.2: sets are processed "in the order of their
/// integer representations").
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(pub u32);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// The set containing only relation `rel`.
    ///
    /// # Panics
    /// Panics if `rel >= MAX_RELS`.
    #[inline]
    pub fn singleton(rel: usize) -> RelSet {
        assert!(rel < MAX_RELS, "relation index {rel} out of range");
        RelSet(1 << rel)
    }

    /// The set `{R_0, …, R_{n-1}}` of all `n` relations.
    ///
    /// # Panics
    /// Panics if `n > MAX_RELS`.
    #[inline]
    pub fn full(n: usize) -> RelSet {
        assert!(n <= MAX_RELS, "{n} relations exceed MAX_RELS = {MAX_RELS}");
        RelSet(((1u64 << n) - 1) as u32)
    }

    /// Construct a set directly from its bit-vector representation.
    #[inline]
    pub const fn from_bits(bits: u32) -> RelSet {
        RelSet(bits)
    }

    /// Construct a set from a wave-enumeration word.
    ///
    /// The rank-wave drivers step Gosper's successor in `u64` so that the
    /// *final* pattern's successor cannot overflow; every pattern actually
    /// used as a row, however, must fit the 32-bit set representation.
    /// This is the audited narrowing point for those drivers — preferred
    /// over ad-hoc `as u32` casts, which `cargo xtask lint` rejects in the
    /// hot loops.
    #[inline]
    pub fn from_wave_bits(bits: u64) -> RelSet {
        debug_assert!(
            bits <= u32::MAX as u64,
            "wave pattern {bits:#x} exceeds the 32-bit set representation"
        );
        RelSet(bits as u32)
    }

    /// The raw bit-vector.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// The set's index into a flat `2^n`-entry table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` iff the set has no members.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` iff the set has exactly one member.
    ///
    /// A nonzero power of two has a single 1-bit; `x & (x-1)` clears the
    /// lowest 1-bit, so the result is zero exactly for powers of two.
    #[inline]
    pub const fn is_singleton(self) -> bool {
        self.0 != 0 && (self.0 & (self.0 - 1)) == 0
    }

    /// Number of members (population count).
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test for relation `rel`.
    #[inline]
    pub const fn contains(self, rel: usize) -> bool {
        self.0 & (1u32 << rel) != 0
    }

    /// `true` iff every member of `self` is a member of `other`.
    #[inline]
    pub const fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` iff the two sets have no members in common.
    #[inline]
    pub const fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Set difference `self - other`.
    #[inline]
    pub const fn minus(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// Insert relation `rel`, returning the enlarged set.
    #[inline]
    pub const fn with(self, rel: usize) -> RelSet {
        RelSet(self.0 | (1u32 << rel))
    }

    /// Remove relation `rel`, returning the shrunken set.
    #[inline]
    pub const fn without(self, rel: usize) -> RelSet {
        RelSet(self.0 & !(1u32 << rel))
    }

    /// The least relation name in the set (`min S` in the paper's total
    /// order on names), or `None` for the empty set.
    #[inline]
    pub fn min_rel(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The singleton `{min S}`, computed as `δ_S(1) = S & -S`
    /// (paper Section 5.4). Returns the empty set for the empty set.
    #[inline]
    pub const fn lowest_singleton(self) -> RelSet {
        RelSet(self.0 & self.0.wrapping_neg())
    }

    /// Successor of `lhs` in the dilated-counting enumeration of subsets of
    /// `self`: `succ(S_lhs) = S & (S_lhs - S)` (paper Section 4.2,
    /// equations (4)–(6)).
    ///
    /// Starting from `δ_S(1) = lowest_singleton()` and iterating, this
    /// visits every nonempty subset of `self` exactly once, ending at
    /// `self` itself (which corresponds to `δ_S(2^|S|-1)`).
    #[inline]
    pub const fn subset_successor(self, lhs: RelSet) -> RelSet {
        RelSet(self.0 & lhs.0.wrapping_sub(self.0))
    }

    /// Iterator over the members of the set, in increasing order.
    #[inline]
    pub fn iter(self) -> RelIter {
        RelIter(self.0)
    }

    /// Iterator over all *proper nonempty* subsets of the set — exactly the
    /// `S_lhs` values examined by `find_best_split` (paper Figure 1).
    ///
    /// Yields `2^|S| - 2` subsets. For sets of fewer than two members the
    /// iterator is empty.
    #[inline]
    pub fn proper_subsets(self) -> ProperSubsets {
        let first = self.lowest_singleton();
        ProperSubsets {
            of: self,
            next: if first == self { RelSet::EMPTY } else { first },
        }
    }

    /// Iterator over all *nonempty* subsets, including the set itself.
    #[inline]
    pub fn nonempty_subsets(self) -> NonemptySubsets {
        NonemptySubsets {
            of: self,
            next: self.lowest_singleton(),
            done: self.is_empty(),
        }
    }
}

impl std::ops::BitOr for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitor(self, rhs: RelSet) -> RelSet {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitand(self, rhs: RelSet) -> RelSet {
        self.intersect(rhs)
    }
}

impl std::ops::Sub for RelSet {
    type Output = RelSet;
    #[inline]
    fn sub(self, rhs: RelSet) -> RelSet {
        self.minus(rhs)
    }
}

impl std::fmt::Debug for RelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "R{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl std::fmt::Display for RelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<usize> for RelSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = RelSet::EMPTY;
        for r in iter {
            s = s.with(r);
        }
        s
    }
}

/// Iterator over the members of a [`RelSet`]; see [`RelSet::iter`].
#[derive(Clone)]
pub struct RelIter(u32);

impl Iterator for RelIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let r = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(r)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelIter {}

/// Iterator over proper nonempty subsets; see [`RelSet::proper_subsets`].
#[derive(Clone)]
pub struct ProperSubsets {
    of: RelSet,
    /// Next subset to yield; `EMPTY` signals exhaustion (the empty set is
    /// never a valid element of the sequence).
    next: RelSet,
}

impl Iterator for ProperSubsets {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        if self.next.is_empty() {
            return None;
        }
        let cur = self.next;
        let succ = self.of.subset_successor(cur);
        // `succ` reaches `of` itself one step before wrapping; the set
        // itself is not a *proper* subset, so it terminates the walk.
        self.next = if succ == self.of { RelSet::EMPTY } else { succ };
        Some(cur)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        // Exact count is knowable but cheap bounds suffice.
        (0, Some((1usize << self.of.len()).saturating_sub(2)))
    }
}

/// Iterator over nonempty subsets including the full set; see
/// [`RelSet::nonempty_subsets`].
#[derive(Clone)]
pub struct NonemptySubsets {
    of: RelSet,
    next: RelSet,
    done: bool,
}

impl Iterator for NonemptySubsets {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let cur = self.next;
        if cur == self.of {
            self.done = true;
        } else {
            self.next = self.of.subset_successor(cur);
        }
        Some(cur)
    }
}

/// Enumerates the proper nonempty subsets of `of` with an *odd stride*,
/// generalizing the natural successor (stride 1) per the paper's footnote 3:
///
/// > One can equally easily visit the `S_lhs` in alternative orders … by
/// > taking `succ(δ(ι)) = δ(ι + k)` for arbitrary odd `k`.
///
/// Because `k` is odd it is coprime to `2^m`, so the walk cycles through all
/// `2^m` residues; `0` (the empty set) and `S` itself are skipped. Used to
/// probe the randomness assumption behind the `(ln 2 / 2)·n·2^n` expected
/// count of best-so-far improvements (Section 3.3).
pub struct StridedSubsets {
    of: RelSet,
    start: u32,
    /// Contracted (un-dilated) current position `ι` in `0..2^m`.
    cur: u32,
    stride: u32,
    mask: u32,
    exhausted: bool,
}

impl StridedSubsets {
    /// Create a strided enumeration with the given odd `stride`, starting
    /// from contracted position 1 (i.e. `δ_S(1)`).
    ///
    /// # Panics
    /// Panics if `stride` is even.
    pub fn new(of: RelSet, stride: u32) -> StridedSubsets {
        assert!(stride % 2 == 1, "stride must be odd");
        let m = of.bits().count_ones();
        StridedSubsets {
            of,
            start: 1 % (1u32 << m.min(31)),
            cur: 1,
            stride,
            mask: if m >= 32 { u32::MAX } else { (1u32 << m) - 1 },
            exhausted: of.len() < 2,
        }
    }

    /// Dilate a contracted index `i` into a subset of `of`: distribute the
    /// low `|of|` bits of `i` onto the 1-bit positions of `of` (`δ_S(i)`).
    #[inline]
    fn dilate(&self, mut i: u32) -> RelSet {
        let mut out = 0u32;
        let mut bits = self.of.bits();
        while bits != 0 && i != 0 {
            let low = bits & bits.wrapping_neg();
            if i & 1 != 0 {
                out |= low;
            }
            i >>= 1;
            bits ^= low;
        }
        RelSet(out)
    }
}

impl Iterator for StridedSubsets {
    type Item = RelSet;

    fn next(&mut self) -> Option<RelSet> {
        if self.exhausted {
            return None;
        }
        loop {
            let pos = self.cur & self.mask;
            self.cur = self.cur.wrapping_add(self.stride);
            let wrapped = (self.cur & self.mask) == self.start;
            // Skip the empty set (0) and the full set (all ones).
            let valid = pos != 0 && pos != self.mask;
            if wrapped {
                self.exhausted = true;
            }
            if valid {
                return Some(self.dilate(pos));
            }
            if wrapped {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn singleton_and_membership() {
        let s = RelSet::singleton(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(s.is_singleton());
        assert_eq!(s.len(), 1);
        assert_eq!(s.bits(), 0b1000);
    }

    #[test]
    fn full_set() {
        assert_eq!(RelSet::full(4).bits(), 0b1111);
        assert_eq!(RelSet::full(0), RelSet::EMPTY);
        assert_eq!(RelSet::full(MAX_RELS).len(), MAX_RELS);
    }

    #[test]
    #[should_panic]
    fn full_set_overflow_panics() {
        let _ = RelSet::full(MAX_RELS + 1);
    }

    #[test]
    fn from_wave_bits_matches_from_bits() {
        for bits in [0u64, 1, 0b1011, 0xffff_ffff] {
            assert_eq!(RelSet::from_wave_bits(bits), RelSet::from_bits(bits as u32));
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the 32-bit set representation")]
    fn from_wave_bits_rejects_oversized_patterns() {
        let _ = RelSet::from_wave_bits(1u64 << 40);
    }

    #[test]
    fn set_algebra() {
        let a = RelSet::from_bits(0b1010);
        let b = RelSet::from_bits(0b0110);
        assert_eq!((a | b).bits(), 0b1110);
        assert_eq!((a & b).bits(), 0b0010);
        assert_eq!((a - b).bits(), 0b1000);
        assert!(a.intersect(b).is_subset_of(a));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(RelSet::from_bits(0b0101)));
    }

    #[test]
    fn min_rel_and_lowest_singleton() {
        let s = RelSet::from_bits(0b10100);
        assert_eq!(s.min_rel(), Some(2));
        assert_eq!(s.lowest_singleton(), RelSet::singleton(2));
        assert_eq!(RelSet::EMPTY.min_rel(), None);
        assert_eq!(RelSet::EMPTY.lowest_singleton(), RelSet::EMPTY);
    }

    #[test]
    fn member_iteration_order() {
        let s = RelSet::from_bits(0b101101);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 2, 3, 5]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn from_iterator() {
        let s: RelSet = [1usize, 4, 2].into_iter().collect();
        assert_eq!(s.bits(), 0b10110);
    }

    /// Paper Section 4.2 worked example: successive `S_lhs` values for a
    /// sparse set follow dilated counting order.
    #[test]
    fn subset_successor_matches_dilated_counting() {
        // S = {R0, R3, R4} = 0b11001
        let s = RelSet::from_bits(0b11001);
        // δ_S over 1..7: 00001, 01000, 01001, 10000, 10001, 11000, 11001
        let expect = [0b00001u32, 0b01000, 0b01001, 0b10000, 0b10001, 0b11000];
        let got: Vec<u32> = s.proper_subsets().map(|x| x.bits()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn proper_subsets_count_and_uniqueness() {
        for bits in [0b1u32, 0b11, 0b1011, 0b11111, 0b1010101] {
            let s = RelSet::from_bits(bits);
            let subs: Vec<RelSet> = s.proper_subsets().collect();
            let expected = (1usize << s.len()).saturating_sub(2);
            assert_eq!(subs.len(), expected, "count for {s:?}");
            let uniq: HashSet<u32> = subs.iter().map(|x| x.bits()).collect();
            assert_eq!(uniq.len(), subs.len(), "duplicates for {s:?}");
            for sub in &subs {
                assert!(sub.is_subset_of(s));
                assert!(!sub.is_empty());
                assert_ne!(*sub, s);
            }
        }
    }

    #[test]
    fn proper_subsets_pair_with_complement_covers_all_splits() {
        let s = RelSet::from_bits(0b1101);
        let mut seen = HashSet::new();
        for lhs in s.proper_subsets() {
            let rhs = s - lhs;
            assert_eq!(lhs | rhs, s);
            assert!(lhs.is_disjoint(rhs));
            assert!(!rhs.is_empty());
            seen.insert((lhs.bits(), rhs.bits()));
        }
        // All 2^3 - 2 = 6 ordered splits of a 3-set.
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn nonempty_subsets_includes_self() {
        let s = RelSet::from_bits(0b110);
        let subs: Vec<u32> = s.nonempty_subsets().map(|x| x.bits()).collect();
        assert_eq!(subs, vec![0b010, 0b100, 0b110]);
        assert_eq!(RelSet::EMPTY.nonempty_subsets().count(), 0);
    }

    #[test]
    fn strided_subsets_visits_same_set_as_natural_order() {
        let s = RelSet::from_bits(0b101101);
        let natural: HashSet<u32> = s.proper_subsets().map(|x| x.bits()).collect();
        for stride in [1u32, 3, 5, 7, 11, 15] {
            let strided: HashSet<u32> =
                StridedSubsets::new(s, stride).map(|x| x.bits()).collect();
            assert_eq!(strided, natural, "stride {stride}");
        }
    }

    #[test]
    fn strided_subsets_small_sets_empty() {
        assert_eq!(StridedSubsets::new(RelSet::singleton(2), 3).count(), 0);
        assert_eq!(StridedSubsets::new(RelSet::EMPTY, 1).count(), 0);
    }

    #[test]
    fn debug_format() {
        let s = RelSet::from_bits(0b101);
        assert_eq!(format!("{s:?}"), "{R0,R2}");
        assert_eq!(format!("{}", RelSet::EMPTY), "{}");
    }
}
