//! Interesting sort orders — physical properties in the special case the
//! paper contemplates (Section 6.5).
//!
//! > The issue of physical properties (e.g., "interesting" sort orders
//! > [SAC+79]) is trickier. Although we have a plausible strategy for
//! > accommodating physical properties in special cases, we have yet to
//! > develop a strategy for the general case.
//!
//! This module implements that plausible strategy for sort-merge joins
//! over *key equivalence classes*: the dynamic-programming state is
//! extended from relation sets to `(set, order)` pairs, where an order is
//! "sorted on equivalence class c" or "no useful order". A merge join on
//! a predicate of class `c` consumes inputs sorted on `c` (sorting them
//! first if necessary, at `|R|·log₂|R|`) and produces output sorted on
//! `c` for free — so when several predicates share a key (a star's hub
//! key, a chain of `x = y = z` equalities), sorts are paid once and
//! reused, exactly the System R "interesting orders" effect.
//!
//! The search still enumerates all bushy splits, Cartesian products
//! included (a keyless split is a product at cost `|L|·|R|`); only the
//! state space grows, by a factor of `(#classes + 1)`. Compare
//! [`optimize_ordered`] with [`optimize_ordered_naive`] (same cost model,
//! orders discarded) to see the savings.

use crate::bitset::RelSet;
use crate::spec::JoinSpec;

/// Sort cost `|R|·log₂|R|` (clamped so tiny inputs still cost ≥ 0).
#[inline]
pub fn sort_cost(card: f64) -> f64 {
    let c = card.max(2.0);
    card.max(0.0) * c.log2()
}

/// A join problem annotated with the key-equivalence class of each
/// predicate. Edge order follows [`JoinSpec::edges`]; class ids are dense
/// `0..num_classes`.
#[derive(Clone, Debug)]
pub struct OrderedSpec {
    spec: JoinSpec,
    /// `edge_class[i]` = equivalence class of the i-th edge of
    /// `spec.edges()`.
    edge_class: Vec<usize>,
    num_classes: usize,
    /// Cached edge list `(lhs, rhs, selectivity)`.
    edges: Vec<(usize, usize, f64)>,
}

impl OrderedSpec {
    /// Annotate `spec` with explicit per-edge classes.
    ///
    /// # Panics
    /// Panics if `edge_class.len() != spec.edge_count()`.
    pub fn new(spec: JoinSpec, edge_class: Vec<usize>) -> OrderedSpec {
        let edges: Vec<(usize, usize, f64)> = spec.edges().collect();
        assert_eq!(edge_class.len(), edges.len(), "one class id per edge");
        let num_classes = edge_class.iter().copied().max().map_or(0, |m| m + 1);
        OrderedSpec { spec, edge_class, num_classes, edges }
    }

    /// Annotate `spec` giving every edge its own class — no order is ever
    /// reusable across joins, the conservative default.
    pub fn distinct_classes(spec: JoinSpec) -> OrderedSpec {
        let k = spec.edge_count();
        OrderedSpec::new(spec, (0..k).collect())
    }

    /// The underlying numeric spec.
    pub fn spec(&self) -> &JoinSpec {
        &self.spec
    }

    /// Number of key equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// A physical, order-annotated plan.
#[derive(Clone, Debug, PartialEq)]
pub enum OrderedPlan {
    /// Base-relation scan (heap order; no useful sort order).
    Scan {
        /// The relation index.
        rel: usize,
    },
    /// Sort the input on a key class.
    Sort {
        /// Input plan.
        input: Box<OrderedPlan>,
        /// Class sorted on.
        class: usize,
    },
    /// Merge join on one predicate's key class (residual spanning
    /// predicates are applied as filters during the merge).
    MergeJoin {
        /// Left input, sorted on `class`.
        left: Box<OrderedPlan>,
        /// Right input, sorted on `class`.
        right: Box<OrderedPlan>,
        /// The merge key's equivalence class.
        class: usize,
    },
    /// Cartesian product (no spanning predicate usable as a key).
    Product {
        /// Left input.
        left: Box<OrderedPlan>,
        /// Right input.
        right: Box<OrderedPlan>,
    },
}

impl OrderedPlan {
    /// Relations covered.
    pub fn rel_set(&self) -> RelSet {
        match self {
            OrderedPlan::Scan { rel } => RelSet::singleton(*rel),
            OrderedPlan::Sort { input, .. } => input.rel_set(),
            OrderedPlan::MergeJoin { left, right, .. } | OrderedPlan::Product { left, right } => {
                left.rel_set() | right.rel_set()
            }
        }
    }

    /// Number of explicit sort operators in the plan.
    pub fn sort_count(&self) -> usize {
        match self {
            OrderedPlan::Scan { .. } => 0,
            OrderedPlan::Sort { input, .. } => 1 + input.sort_count(),
            OrderedPlan::MergeJoin { left, right, .. } | OrderedPlan::Product { left, right } => {
                left.sort_count() + right.sort_count()
            }
        }
    }

    /// Recompute `(cardinality, cost, output order)` bottom-up — the
    /// independent validator for the DP.
    pub fn cost(&self, ospec: &OrderedSpec) -> (f64, f64, Option<usize>) {
        match self {
            OrderedPlan::Scan { rel } => (ospec.spec.card(*rel), 0.0, None),
            OrderedPlan::Sort { input, class } => {
                let (card, cost, _) = input.cost(ospec);
                (card, cost + sort_cost(card), Some(*class))
            }
            OrderedPlan::MergeJoin { left, right, class } => {
                let (lc, lcost, lord) = left.cost(ospec);
                let (rc, rcost, rord) = right.cost(ospec);
                assert_eq!(lord, Some(*class), "left input must arrive sorted on the key");
                assert_eq!(rord, Some(*class), "right input must arrive sorted on the key");
                let (ls, rs) = (left.rel_set(), right.rel_set());
                let out = lc * rc * ospec.spec.pi_span(ls, rs);
                (out, lcost + rcost + lc + rc, Some(*class))
            }
            OrderedPlan::Product { left, right } => {
                let (lc, lcost, _) = left.cost(ospec);
                let (rc, rcost, _) = right.cost(ospec);
                let (ls, rs) = (left.rel_set(), right.rel_set());
                // Spanning predicates (if any) still filter, but without a
                // usable key the operator pays the full pairing cost.
                let out = lc * rc * ospec.spec.pi_span(ls, rs);
                (out, lcost + rcost + lc * rc, None)
            }
        }
    }

    /// Expression rendering, with sorts and keys visible.
    pub fn to_expr(&self) -> String {
        match self {
            OrderedPlan::Scan { rel } => format!("R{rel}"),
            OrderedPlan::Sort { input, class } => format!("sort_c{class}({})", input.to_expr()),
            OrderedPlan::MergeJoin { left, right, class } => {
                format!("({} merge[c{class}] {})", left.to_expr(), right.to_expr())
            }
            OrderedPlan::Product { left, right } => {
                format!("({} x {})", left.to_expr(), right.to_expr())
            }
        }
    }
}

impl std::fmt::Display for OrderedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_expr())
    }
}

/// Result of an order-aware optimization.
#[derive(Clone, Debug)]
pub struct OrderedOptimized {
    /// The cheapest physical plan (over any output order).
    pub plan: OrderedPlan,
    /// Its cost.
    pub cost: f64,
    /// Estimated result cardinality.
    pub card: f64,
}

/// Per-(set, order) DP entry.
#[derive(Copy, Clone, Debug)]
struct Entry {
    cost: f64,
    lhs: RelSet,
    /// Merge class, or `usize::MAX` for a product, or `usize::MAX - 1`
    /// for "not constructed".
    action: usize,
    lhs_presorted: bool,
    rhs_presorted: bool,
}

const UNSET: usize = usize::MAX - 1;
const PRODUCT: usize = usize::MAX;

impl Default for Entry {
    fn default() -> Self {
        Entry { cost: f64::INFINITY, lhs: RelSet::EMPTY, action: UNSET, lhs_presorted: false, rhs_presorted: false }
    }
}

/// Order-aware bushy optimization: DP over `(relation set, sort order)`
/// states. Returns the cheapest plan regardless of final output order.
///
/// # Panics
/// Panics if the problem exceeds 20 relations (the state table is
/// `(#classes + 1)·2^n`).
pub fn optimize_ordered(ospec: &OrderedSpec) -> OrderedOptimized {
    optimize_ordered_inner(ospec, true)
}

/// Same cost model, but output orders are discarded (every merge join
/// sorts both inputs). The gap to [`optimize_ordered`] is the value of
/// interesting-order tracking.
pub fn optimize_ordered_naive(ospec: &OrderedSpec) -> OrderedOptimized {
    optimize_ordered_inner(ospec, false)
}

fn optimize_ordered_inner(ospec: &OrderedSpec, track_orders: bool) -> OrderedOptimized {
    let spec = &ospec.spec;
    let n = spec.n();
    assert!((1..=20).contains(&n), "ordered DP supports up to 20 relations");
    let nc = ospec.num_classes;
    // Order index: 0..nc = sorted on class, nc = no useful order.
    let width = nc + 1;
    let none = nc;
    let size = (1usize << n) * width;
    let mut tbl: Vec<Entry> = vec![Entry::default(); size];
    let idx = |s: RelSet, o: usize| s.index() * width + o;

    // Cardinalities per set (closed form; this DP is not the 3^n hot path).
    let mut cards = vec![0.0f64; 1 << n];
    for bits in 1u32..(1 << n) {
        cards[bits as usize] = spec.join_cardinality(RelSet::from_bits(bits));
    }

    for r in 0..n {
        let s = RelSet::singleton(r);
        tbl[idx(s, none)] = Entry { cost: 0.0, ..Entry::default() };
    }

    for bits in 3u32..(1u32 << n) {
        let s = RelSet::from_bits(bits);
        if s.is_singleton() {
            continue;
        }
        let mut lhs = s.lowest_singleton();
        while lhs != s {
            let rhs = s - lhs;
            // Cheapest way to get each side in *any* order.
            let any = |side: RelSet, tbl: &Vec<Entry>| -> (f64, usize) {
                let mut best = f64::INFINITY;
                let mut ord = none;
                for o in 0..width {
                    let c = tbl[idx(side, o)].cost;
                    if c < best {
                        best = c;
                        ord = o;
                    }
                }
                (best, ord)
            };
            let (l_any, _) = any(lhs, &tbl);
            let (r_any, _) = any(rhs, &tbl);
            let (lc, rc) = (cards[lhs.index()], cards[rhs.index()]);

            // Spanning edges → candidate merge joins.
            let mut spanned = false;
            for (e, &(a, b, _)) in ospec.edges.iter().enumerate() {
                let across = (lhs.contains(a) && rhs.contains(b)) || (lhs.contains(b) && rhs.contains(a));
                if !across {
                    continue;
                }
                spanned = true;
                let c = ospec.edge_class[e];
                // Left input sorted on c: reuse a sorted state or sort the
                // cheapest unsorted one.
                let l_sorted_state = if track_orders { tbl[idx(lhs, c)].cost } else { f64::INFINITY };
                let l_sortfresh = l_any + sort_cost(lc);
                let (l_cost, l_pre) =
                    if l_sorted_state <= l_sortfresh { (l_sorted_state, true) } else { (l_sortfresh, false) };
                let r_sorted_state = if track_orders { tbl[idx(rhs, c)].cost } else { f64::INFINITY };
                let r_sortfresh = r_any + sort_cost(rc);
                let (r_cost, r_pre) =
                    if r_sorted_state <= r_sortfresh { (r_sorted_state, true) } else { (r_sortfresh, false) };
                let total = l_cost + r_cost + lc + rc;
                let out_order = if track_orders { c } else { none };
                let slot = &mut tbl[idx(s, out_order)];
                if total < slot.cost {
                    *slot = Entry {
                        cost: total,
                        lhs,
                        action: c,
                        lhs_presorted: l_pre,
                        rhs_presorted: r_pre,
                    };
                }
            }
            if !spanned {
                // Cartesian product; destroys order.
                let total = l_any + r_any + lc * rc;
                let slot = &mut tbl[idx(s, none)];
                if total < slot.cost {
                    *slot = Entry { cost: total, lhs, action: PRODUCT, ..Entry::default() };
                }
            }
            lhs = s.subset_successor(lhs);
        }
    }

    let full = RelSet::full(n);
    let (mut best_cost, mut best_ord) = (f64::INFINITY, none);
    for o in 0..width {
        let c = tbl[idx(full, o)].cost;
        if c < best_cost {
            best_cost = c;
            best_ord = o;
        }
    }
    let plan = extract(ospec, &tbl, width, &cards, full, best_ord);
    OrderedOptimized { plan, cost: best_cost, card: cards[full.index()] }
}

#[allow(clippy::only_used_in_recursion)]
fn extract(
    ospec: &OrderedSpec,
    tbl: &[Entry],
    width: usize,
    cards: &[f64],
    s: RelSet,
    order: usize,
) -> OrderedPlan {
    let none = width - 1;
    if s.is_singleton() {
        debug_assert_eq!(order, none, "singletons carry no order");
        return OrderedPlan::Scan { rel: s.min_rel().unwrap() };
    }
    let e = tbl[s.index() * width + order];
    assert!(e.action != UNSET, "no plan recorded for {s:?} in order {order}");
    let (lhs, rhs) = (e.lhs, s - e.lhs);
    let any_order = |side: RelSet| -> usize {
        let mut best = f64::INFINITY;
        let mut ord = none;
        for o in 0..width {
            let c = tbl[side.index() * width + o].cost;
            if c < best {
                best = c;
                ord = o;
            }
        }
        ord
    };
    if e.action == PRODUCT {
        let l = extract(ospec, tbl, width, cards, lhs, any_order(lhs));
        let r = extract(ospec, tbl, width, cards, rhs, any_order(rhs));
        return OrderedPlan::Product { left: Box::new(l), right: Box::new(r) };
    }
    let class = e.action;
    let side_plan = |side: RelSet, presorted: bool| -> OrderedPlan {
        if presorted {
            extract(ospec, tbl, width, cards, side, class)
        } else {
            let sub = extract(ospec, tbl, width, cards, side, any_order(side));
            OrderedPlan::Sort { input: Box::new(sub), class }
        }
    };
    OrderedPlan::MergeJoin {
        left: Box::new(side_plan(lhs, e.lhs_presorted)),
        right: Box::new(side_plan(rhs, e.rhs_presorted)),
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain A–B–C where all three predicates share one key class
    /// (`A.k = B.k = C.k`).
    fn shared_key_chain() -> OrderedSpec {
        let spec = JoinSpec::new(
            &[1000.0, 800.0, 600.0],
            &[(0, 1, 1e-3), (1, 2, 1e-3)],
        )
        .unwrap();
        OrderedSpec::new(spec, vec![0, 0])
    }

    #[test]
    fn order_aware_never_costs_more_than_naive() {
        for ospec in [
            shared_key_chain(),
            OrderedSpec::distinct_classes(
                JoinSpec::new(
                    &[100.0, 200.0, 300.0, 50.0],
                    &[(0, 1, 0.01), (1, 2, 0.02), (2, 3, 0.05)],
                )
                .unwrap(),
            ),
        ] {
            let aware = optimize_ordered(&ospec);
            let naive = optimize_ordered_naive(&ospec);
            assert!(
                aware.cost <= naive.cost * (1.0 + 1e-9),
                "aware {} > naive {}",
                aware.cost,
                naive.cost
            );
        }
    }

    #[test]
    fn shared_keys_make_orders_strictly_valuable() {
        let ospec = shared_key_chain();
        let aware = optimize_ordered(&ospec);
        let naive = optimize_ordered_naive(&ospec);
        assert!(
            aware.cost < naive.cost,
            "expected strict improvement: aware {} vs naive {}",
            aware.cost,
            naive.cost
        );
        // The winning plan reuses an order: strictly fewer than the
        // 2-sorts-per-join worst case.
        assert!(aware.plan.sort_count() < 4, "plan {}", aware.plan);
    }

    #[test]
    fn extracted_plan_recosts_to_dp_cost() {
        for ospec in [
            shared_key_chain(),
            OrderedSpec::distinct_classes(
                JoinSpec::new(
                    &[40.0, 70.0, 30.0, 90.0, 25.0],
                    &[(0, 1, 0.05), (1, 2, 0.1), (0, 3, 0.02), (3, 4, 0.2)],
                )
                .unwrap(),
            ),
        ] {
            let opt = optimize_ordered(&ospec);
            let (_, recost, _) = opt.plan.cost(&ospec);
            let tol = opt.cost.abs() * 1e-9 + 1e-9;
            assert!(
                (recost - opt.cost).abs() <= tol,
                "plan {} recosts to {recost}, DP said {}",
                opt.plan,
                opt.cost
            );
        }
    }

    #[test]
    fn products_appear_when_graphs_disconnect() {
        let spec = JoinSpec::new(&[10.0, 20.0, 30.0], &[(0, 1, 0.1)]).unwrap();
        let ospec = OrderedSpec::distinct_classes(spec);
        let opt = optimize_ordered(&ospec);
        fn has_product(p: &OrderedPlan) -> bool {
            match p {
                OrderedPlan::Scan { .. } => false,
                OrderedPlan::Sort { input, .. } => has_product(input),
                OrderedPlan::MergeJoin { left, right, .. } => {
                    has_product(left) || has_product(right)
                }
                OrderedPlan::Product { .. } => true,
            }
        }
        assert!(has_product(&opt.plan), "plan {}", opt.plan);
        assert!(opt.cost.is_finite());
    }

    /// Brute-force oracle over (shape × merge-key × sort placements).
    fn oracle(ospec: &OrderedSpec, s: RelSet) -> Vec<f64> {
        // Returns, per order index (0..=nc with nc = none), the best cost
        // achieving that order (∞ if unachievable).
        let width = ospec.num_classes + 1;
        let none = ospec.num_classes;
        let mut best = vec![f64::INFINITY; width];
        if s.is_singleton() {
            best[none] = 0.0;
            return best;
        }
        let spec = ospec.spec();
        for lhs in s.proper_subsets() {
            let rhs = s - lhs;
            let lbest = oracle(ospec, lhs);
            let rbest = oracle(ospec, rhs);
            let l_any = lbest.iter().cloned().fold(f64::INFINITY, f64::min);
            let r_any = rbest.iter().cloned().fold(f64::INFINITY, f64::min);
            let (lc, rc) = (spec.join_cardinality(lhs), spec.join_cardinality(rhs));
            let mut spanned = false;
            for (e, &(a, b, _)) in ospec.edges.iter().enumerate() {
                let across =
                    (lhs.contains(a) && rhs.contains(b)) || (lhs.contains(b) && rhs.contains(a));
                if !across {
                    continue;
                }
                spanned = true;
                let c = ospec.edge_class[e];
                let l = lbest[c].min(l_any + sort_cost(lc));
                let r = rbest[c].min(r_any + sort_cost(rc));
                let total = l + r + lc + rc;
                if total < best[c] {
                    best[c] = total;
                }
            }
            if !spanned {
                let total = l_any + r_any + lc * rc;
                if total < best[none] {
                    best[none] = total;
                }
            }
        }
        best
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let cases = vec![
            shared_key_chain(),
            OrderedSpec::new(
                JoinSpec::new(
                    &[500.0, 40.0, 60.0, 80.0],
                    &[(0, 1, 0.01), (0, 2, 0.01), (0, 3, 0.01)],
                )
                .unwrap(),
                vec![0, 0, 0], // star on a single hub key
            ),
            OrderedSpec::distinct_classes(
                JoinSpec::new(
                    &[15.0, 25.0, 35.0, 45.0],
                    &[(0, 1, 0.2), (2, 3, 0.1)],
                )
                .unwrap(),
            ),
        ];
        for ospec in cases {
            let full = ospec.spec().all_rels();
            let oracle_best = oracle(&ospec, full)
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            let dp = optimize_ordered(&ospec);
            let tol = oracle_best.abs() * 1e-9 + 1e-9;
            assert!(
                (dp.cost - oracle_best).abs() <= tol,
                "DP {} vs oracle {oracle_best}",
                dp.cost
            );
        }
    }

    #[test]
    fn distinct_classes_match_naive_when_no_sharing_helps() {
        // With every edge in its own class, a sorted output can still be
        // reused only if the *same* edge were joined twice — impossible —
        // so aware and naive agree.
        let spec = JoinSpec::new(
            &[100.0, 200.0, 300.0],
            &[(0, 1, 0.01), (1, 2, 0.02)],
        )
        .unwrap();
        let ospec = OrderedSpec::distinct_classes(spec);
        let aware = optimize_ordered(&ospec);
        let naive = optimize_ordered_naive(&ospec);
        let tol = naive.cost.abs() * 1e-9;
        assert!((aware.cost - naive.cost).abs() <= tol);
    }

    #[test]
    fn single_relation() {
        let ospec = OrderedSpec::distinct_classes(JoinSpec::cartesian(&[5.0]).unwrap());
        let opt = optimize_ordered(&ospec);
        assert_eq!(opt.plan, OrderedPlan::Scan { rel: 0 });
        assert_eq!(opt.cost, 0.0);
    }

    #[test]
    #[should_panic]
    fn class_list_length_checked() {
        let spec = JoinSpec::new(&[1.0, 2.0], &[(0, 1, 0.5)]).unwrap();
        let _ = OrderedSpec::new(spec, vec![0, 1]);
    }
}
