//! Cost models (paper Sections 3.1, 6.1 and the Appendix).
//!
//! The paper permits the cost function `κ` to be broken apart into a
//! *split-independent* component `κ'` and a *split-dependent* component
//! `κ''`, so that
//!
//! ```text
//! κ(R_out, R_lhs, R_rhs) = κ'(R_out) + κ''(R_out, R_lhs, R_rhs)
//! ```
//!
//! `κ'` is evaluated once per relation set (`2^n` times in total) while
//! `κ''` sits inside the `3^n`-iteration split loop; performance is best
//! when `κ''` is cheap and small in magnitude (it must be nonnegative).
//!
//! Three concrete models are provided, following Steinbrunn et al. as cited
//! in the Appendix:
//!
//! * [`Kappa0`] — the naive model `κ0 = |R_out|` (all of it split-independent);
//! * [`SortMerge`] — `κ_sm = |L|·(1+log|L|) + |R|·(1+log|R|)`, with the
//!   logarithm memoized per table row as the paper suggests;
//! * [`DiskNestedLoops`] — `κ_dnl = 2|out|/K + |L||R|/(K²(M−1)) + min(|L|,|R|)/K`;
//! * [`SmDnl`] — `min(κ_sm, κ_dnl)`, the paper's Section 6.5 example of
//!   handling multiple join algorithms inside one optimization.
//!
//! Costs are carried as `f32`, exactly as in the paper (Section 6.3):
//! plans whose cost overflows single precision become `+∞` and are
//! rejected for free by the best-so-far comparison.
//!
//! # Convolution capability
//!
//! The layered-convolution driver ([`crate::DriverChoice::Conv`])
//! evaluates each unordered split `{L, R}` once instead of both ordered
//! orientations; [`ConvSupport`] is the per-model declaration of whether
//! that halving is exact, and at what price. See its variant docs for the
//! exactness argument each tier rests on.

/// How a cost model relates to the convolution driver's orientation
/// halving — the per-model capability consulted once per drive by
/// [`crate::DriverChoice`] resolution.
///
/// The halved enumeration anchors every candidate on the lowest relation
/// of the set, so it only ever evaluates the orientation whose left
/// operand contains `min S`. The declaration here states under which
/// discipline that single evaluation reproduces the split reference's
/// f32 bits for *both* orientations:
///
/// * [`Native`](ConvSupport::Native) — the candidate cost is symmetric
///   in `{L, R}` down to f32 bit level with **no help needed**: `κ'' ≡ 0`
///   (the candidate's cost is the single commutative addition
///   `cost[L] + cost[R]`), so every driver already sees one value per
///   unordered partition.
/// * [`Canonical`](ConvSupport::Canonical) — `κ''` is nonzero but
///   **orientation-invariant once operands are presented in a canonical
///   order**: every κ'' call site (split and conv, scalar and batched)
///   normalizes the operand pair to lowest-relation-first — the operand
///   containing `min S` is passed as `L` — before calling
///   [`CostModel::kappa_dep`]. Both orientations of an unordered
///   partition then execute the *same* float expression on the *same*
///   operand order and round to the same f32 bits, so the halving is
///   exact by construction rather than by algebraic accident. (For the
///   three shipped κ″ models the canonicalization is belt-and-braces:
///   their κ″ are already bitwise symmetric — IEEE-754 `+`, `*`, `min`
///   commute exactly — so the swap is also a no-op on the output bits of
///   the historical un-normalized split reference.)
/// * [`Fallback`](ConvSupport::Fallback) — no bit-exactness argument is
///   made; `Conv`/`Auto` transparently degrade to the split driver and
///   κ'' sees operands in raw walk order, exactly as before.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ConvSupport {
    /// κ'' ≡ 0 (or intrinsically bit-symmetric): conv is exact as-is.
    Native,
    /// κ'' is exact under canonical (lowest-relation-first) operand
    /// ordering, which every κ'' call site enforces for this model.
    Canonical,
    /// No exactness argument: conv requests degrade to split. The
    /// default, so third-party models are never silently halved.
    #[default]
    Fallback,
}

impl ConvSupport {
    /// Stable lower-case name (`native` / `canonical` / `fallback`).
    pub fn name(self) -> &'static str {
        match self {
            ConvSupport::Native => "native",
            ConvSupport::Canonical => "canonical",
            ConvSupport::Fallback => "fallback",
        }
    }

    /// Whether the convolution driver may run at all for this model.
    #[inline]
    pub fn allows_conv(self) -> bool {
        !matches!(self, ConvSupport::Fallback)
    }
}

/// A cost model `κ = κ' + κ''` for dyadic joins / Cartesian products.
///
/// Implementations are monomorphized into the optimizer's hot loop, so all
/// methods should be `#[inline]`-friendly and branch-light. Cardinalities
/// are `f64` (wide dynamic range, per the paper's footnote 2); returned
/// costs are `f32` so that overflow maps to `+∞`.
pub trait CostModel {
    /// Whether `κ''` is identically zero. When `false` the optimizer can
    /// skip the split-dependent computation entirely (the nested-`if`
    /// structure still short-circuits on operand costs either way).
    const HAS_DEP: bool;

    /// Whether [`CostModel::aux`] produces a meaningful memoized value.
    /// When `false`, table layouts may skip storing the aux column.
    const HAS_AUX: bool;

    /// Relationship to the convolution driver's orientation halving —
    /// see [`ConvSupport`]. An associated const so the per-candidate
    /// canonicalization branch at the κ'' call sites folds away at
    /// monomorphization for `Native`/`Fallback` models. Defaults to
    /// `Fallback`: a model must *opt in* with a documented bit-exactness
    /// argument before the halved enumeration may run on it.
    const CONV_SUPPORT: ConvSupport = ConvSupport::Fallback;

    /// Split-independent component `κ'(R_out)`.
    fn kappa_ind(&self, out_card: f64) -> f32;

    /// Split-dependent component `κ''(R_out, R_lhs, R_rhs)`.
    ///
    /// `lhs_aux`/`rhs_aux` are the memoized per-set values produced by
    /// [`CostModel::aux`] for the operand sets (e.g. the `|R|·(1+log|R|)`
    /// terms of the sort-merge model). Must be nonnegative.
    fn kappa_dep(&self, out_card: f64, lhs_card: f64, rhs_card: f64, lhs_aux: f32, rhs_aux: f32)
        -> f32;

    /// Per-set memoized quantity, computed once when a table row's
    /// cardinality is filled in (`compute_properties`), then reused by
    /// every `κ''` evaluation that touches the row.
    #[inline]
    fn aux(&self, _card: f64) -> f32 {
        0.0
    }

    /// Instance-side view of [`CostModel::CONV_SUPPORT`], convenient
    /// where only a `&M` is in hand (tests, capability probes).
    #[inline]
    fn conv_support(&self) -> ConvSupport {
        Self::CONV_SUPPORT
    }

    /// Human-readable model name, used by the benchmark harness and as
    /// the per-model key in calibration profiles
    /// ([`crate::calibrate::CalibrationProfile`]).
    fn name(&self) -> &'static str;

    /// Full cost `κ = κ' + κ''` of a single join, convenient for plan
    /// re-costing outside the DP loop.
    #[inline]
    fn kappa(&self, out_card: f64, lhs_card: f64, rhs_card: f64) -> f32 {
        self.kappa_ind(out_card)
            + self.kappa_dep(out_card, lhs_card, rhs_card, self.aux(lhs_card), self.aux(rhs_card))
    }
}

/// The naive cost model of Section 3.1: the cost of a join is the
/// cardinality of its result, `κ0(R_out, R_lhs, R_rhs) = |R_out|`.
///
/// Decomposed as `κ0' = |R_out|`, `κ0'' = 0` (Section 3.2).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Kappa0;

impl CostModel for Kappa0 {
    const HAS_DEP: bool = false;
    const HAS_AUX: bool = false;
    // κ0'' ≡ 0: a candidate's cost is the commutative f32 addition
    // `cost(L) + cost(R)`, so the anchored half-enumeration of the
    // convolution driver sees the exact same value multiset with no
    // operand normalization at all.
    const CONV_SUPPORT: ConvSupport = ConvSupport::Native;

    #[inline]
    fn kappa_ind(&self, out_card: f64) -> f32 {
        out_card as f32
    }

    #[inline]
    fn kappa_dep(&self, _out: f64, _lhs: f64, _rhs: f64, _la: f32, _ra: f32) -> f32 {
        0.0
    }

    fn name(&self) -> &'static str {
        "kappa0"
    }
}

/// `|R|·(1 + log |R|)`, the per-operand term of the sort-merge model.
///
/// Cardinalities below 1 (possible for intermediate results under strong
/// selectivities) are clamped to 1 so the term stays nonnegative, as the
/// paper requires of `κ''`. The logarithm is base 2.
#[inline]
pub fn sort_term(card: f64) -> f64 {
    let c = card.max(1.0);
    c * (1.0 + c.log2())
}

/// The sort-merge cost model of the Appendix:
/// `κ_sm = |R_lhs|·(1+log|R_lhs|) + |R_rhs|·(1+log|R_rhs|)`.
///
/// All of the cost is split-dependent (`κ' = 0`). The "expensive logarithm
/// computation … can be memoized in the dynamic programming table": the
/// [`CostModel::aux`] hook stores `sort_term(card)` per row, so `κ''` is a
/// single addition in the hot loop.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SortMerge;

impl CostModel for SortMerge {
    const HAS_DEP: bool = true;
    const HAS_AUX: bool = true;
    // Exactness argument: κ_sm'' = lhs_aux + rhs_aux is one IEEE-754 f32
    // addition, and IEEE addition commutes *exactly* (same sum bits for
    // `a + b` and `b + a`) — so the value is orientation-invariant even
    // before canonicalization. Declaring `Canonical` (not `Native`)
    // routes every κ'' call through the lowest-relation-first operand
    // order anyway, making the invariance structural: it no longer
    // depends on an algebraic property a future edit to `kappa_dep`
    // could silently lose.
    const CONV_SUPPORT: ConvSupport = ConvSupport::Canonical;

    #[inline]
    fn kappa_ind(&self, _out_card: f64) -> f32 {
        0.0
    }

    #[inline]
    fn kappa_dep(&self, _out: f64, _lhs: f64, _rhs: f64, lhs_aux: f32, rhs_aux: f32) -> f32 {
        lhs_aux + rhs_aux
    }

    #[inline]
    fn aux(&self, card: f64) -> f32 {
        sort_term(card) as f32
    }

    fn name(&self) -> &'static str {
        "kappa_sm"
    }
}

/// The disk-nested-loops model of the Appendix:
///
/// ```text
/// κ_dnl = 2·|R_out|/K + |R_lhs|·|R_rhs| / (K²·(M−1)) + min(|R_lhs|,|R_rhs|)/K
/// ```
///
/// where `K` is the blocking factor (records per disk block) and `M` the
/// number of blocks that fit in main memory. The paper sets `K = 10`,
/// `M = 100`; both are configurable here. The `2|R_out|/K` term is
/// split-independent (`κ'`), the rest split-dependent (`κ''`) — the nonzero
/// `κ'` is what lets overflow/threshold pruning skip whole split loops
/// (Section 6.3, footnote 8).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DiskNestedLoops {
    /// Blocking factor `K` (records per disk block).
    pub k: f64,
    /// Memory size `M` in disk blocks.
    pub m: f64,
}

impl Default for DiskNestedLoops {
    fn default() -> Self {
        DiskNestedLoops { k: 10.0, m: 100.0 }
    }
}

impl DiskNestedLoops {
    /// Model with explicit blocking factor and memory size.
    ///
    /// # Panics
    /// Panics if `k <= 0` or `m <= 1` (the formula divides by `K²(M−1)`).
    pub fn new(k: f64, m: f64) -> Self {
        assert!(k > 0.0, "blocking factor K must be positive");
        assert!(m > 1.0, "memory size M must exceed one block");
        DiskNestedLoops { k, m }
    }
}

impl CostModel for DiskNestedLoops {
    const HAS_DEP: bool = true;
    const HAS_AUX: bool = false;
    // Exactness argument: κ_dnl'' evaluates entirely in f64 —
    // `lhs*rhs/(K²(M−1)) + min(lhs,rhs)/K` — with one final rounding to
    // f32. IEEE `*` and `min` commute exactly and the `+` operands
    // (`lhs*rhs/…` and `min/K`) are themselves orientation-invariant, so
    // both orientations compute bit-identical f64 values and round to
    // the same f32. As with [`SortMerge`], `Canonical` makes the
    // invariance structural: operands reach this function
    // lowest-relation-first regardless of walk orientation.
    const CONV_SUPPORT: ConvSupport = ConvSupport::Canonical;

    #[inline]
    fn kappa_ind(&self, out_card: f64) -> f32 {
        (2.0 * out_card / self.k) as f32
    }

    #[inline]
    fn kappa_dep(&self, _out: f64, lhs: f64, rhs: f64, _la: f32, _ra: f32) -> f32 {
        (lhs * rhs / (self.k * self.k * (self.m - 1.0)) + lhs.min(rhs) / self.k) as f32
    }

    fn name(&self) -> &'static str {
        "kappa_dnl"
    }
}

/// `min(κ_sm, κ_dnl)` — two join algorithms available per join, as in the
/// paper's Section 6.5:
///
/// > if both a sort-merge join and disk-nested-loops join are available,
/// > then the cost of a join is `κ(…) = min(κ_sm(…), κ_dnl(…))`. There is
/// > no need to keep track of which algorithm yields the minimum.
///
/// `min` does not distribute over the `κ' + κ''` decomposition, so the
/// whole cost is treated as split-dependent (`κ' = 0`); the sort-merge
/// log term is still memoized via the aux column.
#[derive(Copy, Clone, Debug, PartialEq)]
#[derive(Default)]
pub struct SmDnl {
    /// The disk-nested-loops half of the model.
    pub dnl: DiskNestedLoops,
}


impl SmDnl {
    /// Which algorithm wins for a given join — used after optimization to
    /// attach physical operators to the plan in a single traversal.
    pub fn cheaper_algorithm(&self, out: f64, lhs: f64, rhs: f64) -> JoinAlgorithm {
        let sm = sort_term(lhs) + sort_term(rhs);
        let dnl = 2.0 * out / self.dnl.k
            + lhs * rhs / (self.dnl.k * self.dnl.k * (self.dnl.m - 1.0))
            + lhs.min(rhs) / self.dnl.k;
        if sm <= dnl {
            JoinAlgorithm::SortMerge
        } else {
            JoinAlgorithm::DiskNestedLoops
        }
    }
}

impl CostModel for SmDnl {
    const HAS_DEP: bool = true;
    const HAS_AUX: bool = true;
    // Exactness argument: κ'' = min(κ_sm'', κ_dnl''), and both arms are
    // orientation-invariant at the bit level (see [`SortMerge`] and
    // [`DiskNestedLoops`]); `f32::min` of two bit-equal pairs is
    // bit-equal. `Canonical` again makes the argument structural rather
    // than algebraic.
    const CONV_SUPPORT: ConvSupport = ConvSupport::Canonical;

    #[inline]
    fn kappa_ind(&self, _out_card: f64) -> f32 {
        0.0
    }

    #[inline]
    fn kappa_dep(&self, out: f64, lhs: f64, rhs: f64, lhs_aux: f32, rhs_aux: f32) -> f32 {
        let sm = lhs_aux + rhs_aux;
        let dnl = (2.0 * out / self.dnl.k
            + lhs * rhs / (self.dnl.k * self.dnl.k * (self.dnl.m - 1.0))
            + lhs.min(rhs) / self.dnl.k) as f32;
        sm.min(dnl)
    }

    #[inline]
    fn aux(&self, card: f64) -> f32 {
        sort_term(card) as f32
    }

    fn name(&self) -> &'static str {
        "min(kappa_sm,kappa_dnl)"
    }
}

/// Physical join algorithm selected after optimization (Section 6.5).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Sort-merge join.
    SortMerge,
    /// Block nested-loops join reading from disk.
    DiskNestedLoops,
    /// In-memory hash join (provided by the execution engine; not part of
    /// the paper's cost study but useful for end-to-end runs).
    Hash,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kappa0_is_output_cardinality() {
        let m = Kappa0;
        assert_eq!(m.kappa(200.0, 10.0, 20.0), 200.0);
        assert_eq!(m.kappa_ind(6000.0), 6000.0);
        assert_eq!(m.kappa_dep(1.0, 2.0, 3.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn kappa0_overflows_to_infinity() {
        let m = Kappa0;
        assert!(m.kappa_ind(1e39).is_infinite());
        assert!(m.kappa_ind(1e38).is_finite());
    }

    #[test]
    fn sort_merge_matches_formula() {
        let m = SortMerge;
        let lhs = 8.0f64;
        let rhs = 16.0f64;
        let expect = lhs * (1.0 + lhs.log2()) + rhs * (1.0 + rhs.log2());
        let got = m.kappa(123.0, lhs, rhs) as f64;
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
        // κ' is zero: output cardinality is irrelevant.
        assert_eq!(m.kappa(123.0, lhs, rhs), m.kappa(9999.0, lhs, rhs));
    }

    #[test]
    fn sort_term_clamps_below_one() {
        assert_eq!(sort_term(0.25), 1.0); // clamped card 1 → 1·(1+0) = 1
        assert!(sort_term(0.0) >= 0.0);
        assert!(sort_term(2.0) > sort_term(1.0));
    }

    #[test]
    fn dnl_matches_formula() {
        let m = DiskNestedLoops::new(10.0, 100.0);
        let (out, lhs, rhs) = (5000.0, 100.0, 200.0);
        let expect = 2.0 * out / 10.0 + lhs * rhs / (100.0 * 99.0) + 100.0 / 10.0;
        let got = m.kappa(out, lhs, rhs) as f64;
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }

    #[test]
    fn dnl_kappa_ind_is_nonzero() {
        // footnote 8: a realistic model has κ' ≢ 0, enabling loop skipping.
        let m = DiskNestedLoops::default();
        assert!(m.kappa_ind(100.0) > 0.0);
    }

    #[test]
    #[should_panic]
    fn dnl_rejects_bad_memory_size() {
        let _ = DiskNestedLoops::new(10.0, 1.0);
    }

    #[test]
    fn smdnl_is_min_of_components() {
        let m = SmDnl::default();
        let sm = SortMerge;
        let dnl = m.dnl;
        for &(out, lhs, rhs) in
            &[(100.0, 10.0, 10.0), (1e6, 1e3, 1e3), (50.0, 2.0, 2e5), (1e9, 1e4, 1e5)]
        {
            let expect = sm.kappa(out, lhs, rhs).min(dnl.kappa(out, lhs, rhs));
            let got = m.kappa(out, lhs, rhs);
            let tol = expect.abs() * 1e-5 + 1e-5;
            assert!((got - expect).abs() <= tol, "({out},{lhs},{rhs}): {got} vs {expect}");
        }
    }

    #[test]
    fn smdnl_algorithm_choice_consistent_with_min() {
        let m = SmDnl::default();
        let (out, lhs, rhs) = (1e6, 1e3, 1e3);
        let sm_cost = SortMerge.kappa(out, lhs, rhs);
        let dnl_cost = m.dnl.kappa(out, lhs, rhs);
        let algo = m.cheaper_algorithm(out, lhs, rhs);
        if sm_cost < dnl_cost {
            assert_eq!(algo, JoinAlgorithm::SortMerge);
        } else if dnl_cost < sm_cost {
            assert_eq!(algo, JoinAlgorithm::DiskNestedLoops);
        }
    }

    #[test]
    fn conv_support_matches_kappa_dep_shape() {
        assert_eq!(Kappa0::CONV_SUPPORT, ConvSupport::Native);
        assert_eq!(SortMerge::CONV_SUPPORT, ConvSupport::Canonical);
        assert_eq!(DiskNestedLoops::CONV_SUPPORT, ConvSupport::Canonical);
        assert_eq!(SmDnl::CONV_SUPPORT, ConvSupport::Canonical);
        assert_eq!(Kappa0.conv_support(), ConvSupport::Native);
        assert!(ConvSupport::Native.allows_conv());
        assert!(ConvSupport::Canonical.allows_conv());
        assert!(!ConvSupport::Fallback.allows_conv());
        // Opt-in is the default: a model that says nothing falls back.
        struct Mute;
        impl CostModel for Mute {
            const HAS_DEP: bool = true;
            const HAS_AUX: bool = false;
            fn kappa_ind(&self, _o: f64) -> f32 {
                0.0
            }
            fn kappa_dep(&self, _o: f64, l: f64, r: f64, _la: f32, _ra: f32) -> f32 {
                (2.0 * l + r) as f32
            }
            fn name(&self) -> &'static str {
                "mute"
            }
        }
        assert_eq!(Mute::CONV_SUPPORT, ConvSupport::Fallback);
        for s in [ConvSupport::Native, ConvSupport::Canonical, ConvSupport::Fallback] {
            assert!(!s.name().is_empty());
        }
    }

    /// The documented bit-exactness argument for the `Canonical` models:
    /// κ'' must be orientation-invariant *at the f32 bit level* across a
    /// wide sweep of operand magnitudes (subnormal-adjacent through
    /// overflow-adjacent), since the canonical-split reference equals
    /// the historical un-normalized split output only if the swap is a
    /// value no-op.
    #[test]
    fn canonical_models_have_bitwise_symmetric_kappa_dep() {
        let cards = [
            0.25, 1.0, 3.0, 10.0, 1e3, 12_345.678, 1e10, 1e30, 1e38, 3.4e38, 1e60,
        ];
        let sm = SortMerge;
        let dnl = DiskNestedLoops::default();
        let both = SmDnl::default();
        for &o in &cards {
            for &l in &cards {
                for &r in &cards {
                    let (la, ra) = (sm.aux(l), sm.aux(r));
                    assert_eq!(
                        sm.kappa_dep(o, l, r, la, ra).to_bits(),
                        sm.kappa_dep(o, r, l, ra, la).to_bits(),
                        "sm κ'' orientation-variant at ({o},{l},{r})"
                    );
                    assert_eq!(
                        dnl.kappa_dep(o, l, r, 0.0, 0.0).to_bits(),
                        dnl.kappa_dep(o, r, l, 0.0, 0.0).to_bits(),
                        "dnl κ'' orientation-variant at ({o},{l},{r})"
                    );
                    let (ba, bb) = (both.aux(l), both.aux(r));
                    assert_eq!(
                        both.kappa_dep(o, l, r, ba, bb).to_bits(),
                        both.kappa_dep(o, r, l, bb, ba).to_bits(),
                        "smdnl κ'' orientation-variant at ({o},{l},{r})"
                    );
                }
            }
        }
    }

    #[test]
    fn kappa_dep_is_nonnegative() {
        // Required by the paper ("we assume it is nonnegative").
        let cards = [0.5, 1.0, 10.0, 1e4, 1e10];
        for &l in &cards {
            for &r in &cards {
                for &o in &cards {
                    assert!(SortMerge.kappa_dep(o, l, r, sort_term(l) as f32, sort_term(r) as f32) >= 0.0);
                    assert!(DiskNestedLoops::default().kappa_dep(o, l, r, 0.0, 0.0) >= 0.0);
                    let m = SmDnl::default();
                    assert!(m.kappa_dep(o, l, r, m.aux(l), m.aux(r)) >= 0.0);
                }
            }
        }
    }
}
